//! Reusable Dijkstra toolkit.
//!
//! Every shortest-path computation in the system — NPD-index construction
//! (Alg. 1), fragment query evaluation (Alg. 2), centralized ground truth,
//! and the baselines — goes through [`DijkstraWorkspace`]. The workspace owns
//! the distance array and the heap and is reused across runs with epoch
//! stamping, so repeated searches on a large graph do not pay O(n)
//! re-initialization (a pattern recommended by the Rust perf guides for hot
//! database loops).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::graph::Weight;
use crate::INF;

/// Minimal directed-graph abstraction used by the Dijkstra toolkit.
///
/// Implementations include [`crate::RoadNetwork`] (undirected: both arcs) and
/// the query engine's extended fragment graph (mixed directed/undirected).
pub trait Graph {
    /// Number of nodes; node ids are `0..num_nodes()`.
    fn num_nodes(&self) -> usize;
    /// Invoke `f(neighbor, weight)` for every outgoing arc of `node`.
    fn for_each_neighbor(&self, node: u32, f: &mut dyn FnMut(u32, Weight));
}

/// What the settle callback tells the search to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Keep relaxing this node's edges and continue.
    Continue,
    /// Do not relax this node's edges, but continue the search. Useful for
    /// pruned expansions (e.g. virtual keyword nodes must not be re-entered).
    SkipNeighbors,
    /// Stop the whole search now.
    Stop,
}

/// Per-run statistics, used by the Theorem 5 cost-model instrumentation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Nodes settled (popped with their final distance).
    pub settled: usize,
    /// Heap pushes performed (relaxations that improved a distance).
    pub pushed: usize,
}

/// Largest `bound + 1` for which the Dial bucket-queue fast path is used.
///
/// Every production coverage search is bounded by its slot radius, which the
/// bench datasets keep well under this (radii are a few tens of average edge
/// lengths); the bucket array costs 24 bytes per distance unit and is reused
/// across runs, so the cap bounds workspace memory at ~1.5 MiB worst case.
const DIAL_MAX_BUCKETS: usize = 1 << 16;

/// The queue kernel behind a bounded search (see [`DijkstraWorkspace`]).
/// [`DijkstraWorkspace::run`] picks one from the bound alone; benchmarks
/// pit them against each other explicitly via
/// [`DijkstraWorkspace::run_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Dial bucket queue (`bound < 2^16`).
    Dial,
    /// Binary heap over packed `(dist << 32) | node` keys (`bound < 2^32`).
    PackedHeap,
    /// Binary heap over `(u64, u32)` tuples (any bound).
    WideHeap,
}

/// The kernel [`DijkstraWorkspace::run`] selects for `bound` —
/// deterministic and bound-only, so serial and parallel evaluations of the
/// same slot always take the same code path.
pub fn kernel_for(bound: u64) -> Kernel {
    if (bound as usize) < DIAL_MAX_BUCKETS {
        Kernel::Dial
    } else if bound < (1 << 32) {
        Kernel::PackedHeap
    } else {
        Kernel::WideHeap
    }
}

/// A reusable single-source / multi-source Dijkstra workspace.
///
/// Distances are valid only for nodes whose stamp equals the current epoch;
/// `reset` is O(1) (bumps the epoch) except on epoch wrap, where it clears in
/// O(n) (happens once every ~4 billion runs).
///
/// Three kernels sit behind [`DijkstraWorkspace::run`], picked by the search
/// bound alone (so the choice is deterministic for a given slot):
///
/// * `bound < DIAL_MAX_BUCKETS`: a Dial bucket queue — O(1) decrease-key and
///   pop, no comparisons. Settles in nondecreasing distance order like the
///   heaps, but breaks equal-distance ties in bucket (LIFO) order rather
///   than node-id order, so `pushed` may differ from the heap kernels —
///   deterministically — while the settled set and distances are identical.
/// * `bound < 2^32`: a binary heap over packed `(dist << 32) | node` u64
///   keys — same pop order as the tuple heap (distance, then node id) with
///   half the key width and cheaper comparisons.
/// * otherwise (unbounded searches): the original `(u64, u32)` tuple heap.
#[derive(Debug)]
pub struct DijkstraWorkspace {
    dist: Vec<u64>,
    stamp: Vec<u32>,
    epoch: u32,
    heap: BinaryHeap<Reverse<(u64, u32)>>,
    packed: BinaryHeap<Reverse<u64>>,
    /// Dial buckets indexed by distance; all empty between runs (the run
    /// either drains them or sweeps the touched range on early stop).
    buckets: Vec<Vec<u32>>,
}

impl DijkstraWorkspace {
    /// Create a workspace able to address `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        DijkstraWorkspace {
            dist: vec![INF; num_nodes],
            stamp: vec![0; num_nodes],
            epoch: 0,
            heap: BinaryHeap::new(),
            packed: BinaryHeap::new(),
            buckets: Vec::new(),
        }
    }

    /// Grow to accommodate `num_nodes` nodes (no-op if already large enough).
    pub fn ensure_capacity(&mut self, num_nodes: usize) {
        if self.dist.len() < num_nodes {
            self.dist.resize(num_nodes, INF);
            self.stamp.resize(num_nodes, 0);
        }
    }

    fn begin_epoch(&mut self) {
        self.heap.clear();
        self.packed.clear();
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
    }

    #[inline]
    fn current_dist(&self, node: u32) -> u64 {
        if self.stamp[node as usize] == self.epoch {
            self.dist[node as usize]
        } else {
            INF
        }
    }

    #[inline]
    fn set_dist(&mut self, node: u32, d: u64) {
        self.dist[node as usize] = d;
        self.stamp[node as usize] = self.epoch;
    }

    /// Distance computed by the **last** run for `node` (INF if untouched).
    /// Only settled nodes have final distances; unsettled stamped nodes hold
    /// tentative values that are still upper bounds.
    pub fn last_dist(&self, node: u32) -> u64 {
        self.current_dist(node)
    }

    /// Run Dijkstra from `sources` (each with an initial distance), bounded
    /// by `bound` (nodes farther than `bound` are neither settled nor
    /// reported). `on_settle(node, dist)` fires exactly once per settled node
    /// in nondecreasing distance order and steers the search via [`Control`].
    pub fn run<G: Graph + ?Sized>(
        &mut self,
        graph: &G,
        sources: &[(u32, u64)],
        bound: u64,
        on_settle: impl FnMut(u32, u64) -> Control,
    ) -> SearchStats {
        self.run_with(kernel_for(bound), graph, sources, bound, on_settle)
    }

    /// [`Self::run`] with an explicitly chosen kernel — the benchmark seam
    /// for pitting the kernels against each other on identical searches.
    /// The caller owns the validity contract [`kernel_for`] encodes:
    /// `Dial` requires `bound < 2^16`, `PackedHeap` requires
    /// `bound < 2^32`.
    pub fn run_with<G: Graph + ?Sized>(
        &mut self,
        kernel: Kernel,
        graph: &G,
        sources: &[(u32, u64)],
        bound: u64,
        on_settle: impl FnMut(u32, u64) -> Control,
    ) -> SearchStats {
        self.ensure_capacity(graph.num_nodes());
        self.begin_epoch();
        match kernel {
            Kernel::Dial => {
                assert!((bound as usize) < DIAL_MAX_BUCKETS, "Dial needs bound < 2^16");
                self.run_dial(graph, sources, bound, on_settle)
            }
            Kernel::PackedHeap => {
                assert!(bound < (1 << 32), "PackedHeap needs bound < 2^32");
                self.run_packed(graph, sources, bound, on_settle)
            }
            Kernel::WideHeap => self.run_wide(graph, sources, bound, on_settle),
        }
    }

    /// Dial bucket-queue kernel: one bucket per distance unit, drained in
    /// order. Entries carry no distance (the bucket index is the distance);
    /// staleness is detected by comparing against the settled distance.
    fn run_dial<G: Graph + ?Sized>(
        &mut self,
        graph: &G,
        sources: &[(u32, u64)],
        bound: u64,
        mut on_settle: impl FnMut(u32, u64) -> Control,
    ) -> SearchStats {
        let nb = bound as usize + 1;
        if self.buckets.len() < nb {
            self.buckets.resize_with(nb, Vec::new);
        }
        let mut stats = SearchStats::default();
        let mut remaining = 0usize; // queued entries, stale included
        let mut lo = nb; // lowest touched bucket
        let mut hi = 0usize; // highest touched bucket
        for &(s, d0) in sources {
            if d0 <= bound && d0 < self.current_dist(s) {
                self.set_dist(s, d0);
                self.buckets[d0 as usize].push(s);
                stats.pushed += 1;
                remaining += 1;
                lo = lo.min(d0 as usize);
                hi = hi.max(d0 as usize);
            }
        }
        let mut i = lo;
        let mut stopped = false;
        while remaining > 0 {
            // Non-negative weights mean every queued entry sits at >= i, so
            // the scan never restarts.
            while self.buckets[i].is_empty() {
                i += 1;
            }
            let u = self.buckets[i].pop().expect("non-empty bucket");
            remaining -= 1;
            let d = i as u64;
            if d > self.current_dist(u) {
                continue; // stale entry — u settled at a smaller distance
            }
            stats.settled += 1;
            match on_settle(u, d) {
                Control::Stop => {
                    stopped = true;
                    break;
                }
                Control::SkipNeighbors => continue,
                Control::Continue => {}
            }
            // Relax in place: split borrows so the adjacency closure can
            // update the distance arrays without a temporary allocation.
            let (dist, stamp, buckets) = (&mut self.dist, &mut self.stamp, &mut self.buckets);
            let epoch = self.epoch;
            let pushed = &mut stats.pushed;
            graph.for_each_neighbor(u, &mut |v, w| {
                let nd = d + u64::from(w);
                if nd <= bound {
                    let vi = v as usize;
                    let cur = if stamp[vi] == epoch { dist[vi] } else { INF };
                    if nd < cur {
                        dist[vi] = nd;
                        stamp[vi] = epoch;
                        buckets[nd as usize].push(v);
                        *pushed += 1;
                        remaining += 1;
                        hi = hi.max(nd as usize);
                    }
                }
            });
        }
        // Leave every bucket empty for the next run: a completed search
        // drained them all; an early stop sweeps the still-touched range.
        if stopped && remaining > 0 {
            for b in &mut self.buckets[i..=hi] {
                b.clear();
            }
        }
        stats
    }

    /// Binary-heap kernel over packed `(dist << 32) | node` keys — valid
    /// whenever `bound < 2^32`, with pop order identical to the tuple heap.
    fn run_packed<G: Graph + ?Sized>(
        &mut self,
        graph: &G,
        sources: &[(u32, u64)],
        bound: u64,
        mut on_settle: impl FnMut(u32, u64) -> Control,
    ) -> SearchStats {
        let mut stats = SearchStats::default();
        for &(s, d0) in sources {
            if d0 <= bound && d0 < self.current_dist(s) {
                self.set_dist(s, d0);
                self.packed.push(Reverse((d0 << 32) | u64::from(s)));
                stats.pushed += 1;
            }
        }
        while let Some(Reverse(key)) = self.packed.pop() {
            let (d, u) = (key >> 32, key as u32);
            if d > self.current_dist(u) {
                continue; // stale heap entry
            }
            stats.settled += 1;
            match on_settle(u, d) {
                Control::Stop => break,
                Control::SkipNeighbors => continue,
                Control::Continue => {}
            }
            let (dist, stamp, packed) = (&mut self.dist, &mut self.stamp, &mut self.packed);
            let epoch = self.epoch;
            let pushed = &mut stats.pushed;
            graph.for_each_neighbor(u, &mut |v, w| {
                let nd = d + u64::from(w);
                if nd <= bound {
                    let vi = v as usize;
                    let cur = if stamp[vi] == epoch { dist[vi] } else { INF };
                    if nd < cur {
                        dist[vi] = nd;
                        stamp[vi] = epoch;
                        packed.push(Reverse((nd << 32) | u64::from(v)));
                        *pushed += 1;
                    }
                }
            });
        }
        stats
    }

    /// Tuple-heap kernel for unbounded (or absurdly wide) searches, where
    /// distances may not fit in 32 bits.
    fn run_wide<G: Graph + ?Sized>(
        &mut self,
        graph: &G,
        sources: &[(u32, u64)],
        bound: u64,
        mut on_settle: impl FnMut(u32, u64) -> Control,
    ) -> SearchStats {
        let mut stats = SearchStats::default();
        for &(s, d0) in sources {
            if d0 <= bound && d0 < self.current_dist(s) {
                self.set_dist(s, d0);
                self.heap.push(Reverse((d0, s)));
                stats.pushed += 1;
            }
        }
        while let Some(Reverse((d, u))) = self.heap.pop() {
            if d > self.current_dist(u) {
                continue; // stale heap entry
            }
            stats.settled += 1;
            match on_settle(u, d) {
                Control::Stop => break,
                Control::SkipNeighbors => continue,
                Control::Continue => {}
            }
            // Relax in place: split borrows so the adjacency closure can
            // update the distance arrays without a temporary allocation.
            let (dist, stamp, heap) = (&mut self.dist, &mut self.stamp, &mut self.heap);
            let epoch = self.epoch;
            let pushed = &mut stats.pushed;
            graph.for_each_neighbor(u, &mut |v, w| {
                let nd = d.saturating_add(u64::from(w));
                if nd <= bound {
                    let vi = v as usize;
                    let cur = if stamp[vi] == epoch { dist[vi] } else { INF };
                    if nd < cur {
                        dist[vi] = nd;
                        stamp[vi] = epoch;
                        heap.push(Reverse((nd, v)));
                        *pushed += 1;
                    }
                }
            });
        }
        stats
    }

    /// All-destinations distances from a single source, bounded by `bound`.
    /// Returns `(node, dist)` pairs for every reachable node within the
    /// bound, in nondecreasing distance order.
    pub fn distances_from<G: Graph + ?Sized>(
        &mut self,
        graph: &G,
        source: u32,
        bound: u64,
    ) -> Vec<(u32, u64)> {
        let mut out = Vec::new();
        self.run(graph, &[(source, 0)], bound, |n, d| {
            out.push((n, d));
            Control::Continue
        });
        out
    }

    /// Point-to-point distance with early termination.
    pub fn distance<G: Graph + ?Sized>(&mut self, graph: &G, source: u32, target: u32) -> u64 {
        let mut found = INF;
        self.run(graph, &[(source, 0)], INF - 1, |n, d| {
            if n == target {
                found = d;
                Control::Stop
            } else {
                Control::Continue
            }
        });
        found
    }

    /// Distance from `source` to the nearest member of `targets`.
    pub fn distance_to_any<G: Graph + ?Sized>(
        &mut self,
        graph: &G,
        source: u32,
        targets: &[u32],
    ) -> u64 {
        if targets.is_empty() {
            return INF;
        }
        let mut marks = std::collections::HashSet::with_capacity(targets.len());
        marks.extend(targets.iter().copied());
        let mut found = INF;
        self.run(graph, &[(source, 0)], INF - 1, |n, d| {
            if marks.contains(&n) {
                found = d;
                Control::Stop
            } else {
                Control::Continue
            }
        });
        found
    }

    /// Multi-source coverage: all nodes within `radius` of any source
    /// (sources seeded at distance 0). This is the direct form of the
    /// paper's *keyword coverage* when sources are the nodes containing the
    /// keyword.
    pub fn coverage<G: Graph + ?Sized>(
        &mut self,
        graph: &G,
        sources: &[u32],
        radius: u64,
    ) -> Vec<(u32, u64)> {
        let seeded: Vec<(u32, u64)> = sources.iter().map(|&s| (s, 0)).collect();
        let mut out = Vec::new();
        self.run(graph, &seeded, radius, |n, d| {
            out.push((n, d));
            Control::Continue
        });
        out
    }
}

/// Dijkstra with predecessor tracking, for extracting actual shortest paths.
/// Kept separate from [`DijkstraWorkspace`] because predecessor arrays are
/// only needed in tests, diagnostics and the generator.
pub fn shortest_path<G: Graph + ?Sized>(
    graph: &G,
    source: u32,
    target: u32,
) -> Option<(Vec<u32>, u64)> {
    let n = graph.num_nodes();
    let mut dist = vec![INF; n];
    let mut pred = vec![u32::MAX; n];
    let mut heap = BinaryHeap::new();
    dist[source as usize] = 0;
    heap.push(Reverse((0u64, source)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u as usize] {
            continue;
        }
        if u == target {
            break;
        }
        let mut relaxed = Vec::new();
        graph.for_each_neighbor(u, &mut |v, w| {
            relaxed.push((v, d.saturating_add(u64::from(w))));
        });
        for (v, nd) in relaxed {
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                pred[v as usize] = u;
                heap.push(Reverse((nd, v)));
            }
        }
    }
    if dist[target as usize] == INF {
        return None;
    }
    let mut path = vec![target];
    let mut cur = target;
    while cur != source {
        cur = pred[cur as usize];
        path.push(cur);
    }
    path.reverse();
    Some((path, dist[target as usize]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::figure1_network;

    #[test]
    fn figure1_distances_match_paper() {
        let (g, names) = figure1_network();
        let mut ws = DijkstraWorkspace::new(g.num_nodes());
        // Paper Example 1 geometry: B and E are within 3 of both "museum"
        // (node D) and "school" (node A), while A, C, D are not.
        let d_a = |t: &str, ws: &mut DijkstraWorkspace| ws.distance(&g, names["A"].0, names[t].0);
        assert_eq!(d_a("B", &mut ws), 2);
        assert_eq!(d_a("E", &mut ws), 1);
        assert_eq!(d_a("D", &mut ws), 4);
        assert_eq!(d_a("C", &mut ws), 4);
        let d_d = |t: &str, ws: &mut DijkstraWorkspace| ws.distance(&g, names["D"].0, names[t].0);
        assert_eq!(d_d("B", &mut ws), 2);
        assert_eq!(d_d("E", &mut ws), 3);
        assert_eq!(d_d("C", &mut ws), 4);
    }

    #[test]
    fn bounded_search_respects_radius() {
        let (g, names) = figure1_network();
        let mut ws = DijkstraWorkspace::new(g.num_nodes());
        let within_2: Vec<u32> =
            ws.distances_from(&g, names["A"].0, 2).into_iter().map(|(n, _)| n).collect();
        // A(0), E(1), B(2) — D is at 3, C at 4.
        assert_eq!(within_2.len(), 3);
        assert!(within_2.contains(&names["A"].0));
        assert!(within_2.contains(&names["E"].0));
        assert!(within_2.contains(&names["B"].0));
    }

    #[test]
    fn settle_order_is_nondecreasing() {
        let (g, names) = figure1_network();
        let mut ws = DijkstraWorkspace::new(g.num_nodes());
        let mut last = 0u64;
        ws.run(&g, &[(names["A"].0, 0)], INF - 1, |_, d| {
            assert!(d >= last);
            last = d;
            Control::Continue
        });
    }

    #[test]
    fn multi_source_coverage_matches_definition() {
        let (g, names) = figure1_network();
        let mut ws = DijkstraWorkspace::new(g.num_nodes());
        // Coverage of {A, D} (school ∪ museum sources) with radius 1:
        // A(0), D(0), E(1 via A).
        let cov = ws.coverage(&g, &[names["A"].0, names["D"].0], 1);
        let nodes: std::collections::HashSet<u32> = cov.iter().map(|&(n, _)| n).collect();
        assert_eq!(nodes, [names["A"].0, names["D"].0, names["E"].0].into_iter().collect());
    }

    #[test]
    fn workspace_reuse_across_epochs_is_correct() {
        let (g, names) = figure1_network();
        let mut ws = DijkstraWorkspace::new(g.num_nodes());
        for _ in 0..100 {
            assert_eq!(ws.distance(&g, names["A"].0, names["C"].0), 4);
            assert_eq!(ws.distance(&g, names["C"].0, names["A"].0), 4);
        }
    }

    #[test]
    fn stop_control_halts_search() {
        let (g, names) = figure1_network();
        let mut ws = DijkstraWorkspace::new(g.num_nodes());
        let mut settled = 0;
        ws.run(&g, &[(names["A"].0, 0)], INF - 1, |_, _| {
            settled += 1;
            Control::Stop
        });
        assert_eq!(settled, 1);
    }

    #[test]
    fn skip_neighbors_prunes_expansion() {
        let (g, names) = figure1_network();
        let mut ws = DijkstraWorkspace::new(g.num_nodes());
        // Refuse to expand anything: only sources get settled.
        let mut settled = Vec::new();
        ws.run(&g, &[(names["A"].0, 0), (names["D"].0, 0)], INF - 1, |n, _| {
            settled.push(n);
            Control::SkipNeighbors
        });
        settled.sort_unstable();
        let mut expect = vec![names["A"].0, names["D"].0];
        expect.sort_unstable();
        assert_eq!(settled, expect);
    }

    #[test]
    fn distance_to_any_picks_nearest_target() {
        let (g, names) = figure1_network();
        let mut ws = DijkstraWorkspace::new(g.num_nodes());
        let d = ws.distance_to_any(&g, names["E"].0, &[names["C"].0, names["B"].0]);
        // E→B = E→A→B(3) or E→D→B(3); C is farther.
        assert_eq!(d, 3);
        assert_eq!(ws.distance_to_any(&g, names["E"].0, &[]), INF);
    }

    #[test]
    fn unreachable_distance_is_inf() {
        use crate::graph::RoadNetworkBuilder;
        let mut b = RoadNetworkBuilder::new();
        let x = b.add_node(0.0, 0.0, &[]);
        let y = b.add_node(1.0, 0.0, &[]);
        let z = b.add_node(9.0, 9.0, &[]);
        b.add_edge(x, y, 1).unwrap();
        let g = b.build().unwrap();
        let mut ws = DijkstraWorkspace::new(g.num_nodes());
        assert_eq!(ws.distance(&g, x.0, z.0), INF);
    }

    #[test]
    fn shortest_path_extraction() {
        let (g, names) = figure1_network();
        let (path, d) = shortest_path(&g, names["A"].0, names["C"].0).unwrap();
        assert_eq!(d, 4);
        assert_eq!(path, vec![names["A"].0, names["B"].0, names["C"].0]);
        assert!(shortest_path(&g, names["A"].0, names["A"].0).is_some());
    }

    #[test]
    fn stats_count_settles_and_pushes() {
        let (g, names) = figure1_network();
        let mut ws = DijkstraWorkspace::new(g.num_nodes());
        let stats = ws.run(&g, &[(names["A"].0, 0)], INF - 1, |_, _| Control::Continue);
        assert_eq!(stats.settled, 5);
        assert!(stats.pushed >= 5);
    }

    /// Collect the settled (node, dist) set for one bound on one kernel by
    /// forcing the dispatch with an artificial bound.
    fn settled_at_bound(
        ws: &mut DijkstraWorkspace,
        g: &impl Graph,
        sources: &[(u32, u64)],
        bound: u64,
    ) -> Vec<(u32, u64)> {
        let mut out = Vec::new();
        ws.run(g, sources, bound, |n, d| {
            out.push((n, d));
            Control::Continue
        });
        out.sort_unstable();
        out
    }

    /// A deterministic pseudo-random sparse graph large enough that the
    /// three kernels genuinely diverge in traversal order.
    fn lcg_network(nodes: usize, edges: usize) -> crate::RoadNetwork {
        use crate::graph::RoadNetworkBuilder;
        let mut b = RoadNetworkBuilder::new();
        let ids: Vec<_> = (0..nodes).map(|i| b.add_node(i as f32, 0.0, &[])).collect();
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut added = 0;
        while added < edges {
            let u = (next() as usize) % nodes;
            let v = (next() as usize) % nodes;
            let w = (next() % 50 + 1) as u32;
            if u != v && b.add_edge(ids[u], ids[v], w).is_ok() {
                added += 1;
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn dial_packed_and_wide_kernels_agree_on_settled_sets() {
        let g = lcg_network(200, 600);
        let mut ws = DijkstraWorkspace::new(g.num_nodes());
        let sources = [(0u32, 0u64), (17, 3), (42, 11)];
        for bound in [0u64, 1, 7, 40, 200, 1000] {
            // `bound` < DIAL_MAX_BUCKETS dispatches to the Dial kernel; the
            // heap kernels are reached through private entry points here so
            // the same bound exercises all three.
            ws.begin_epoch();
            let dial = {
                let mut out = Vec::new();
                ws.ensure_capacity(g.num_nodes());
                ws.run_dial(&g, &sources, bound, |n, d| {
                    out.push((n, d));
                    Control::Continue
                });
                out.sort_unstable();
                out
            };
            ws.begin_epoch();
            let packed = {
                let mut out = Vec::new();
                ws.run_packed(&g, &sources, bound, |n, d| {
                    out.push((n, d));
                    Control::Continue
                });
                out.sort_unstable();
                out
            };
            ws.begin_epoch();
            let wide = {
                let mut out = Vec::new();
                ws.run_wide(&g, &sources, bound, |n, d| {
                    out.push((n, d));
                    Control::Continue
                });
                out.sort_unstable();
                out
            };
            assert_eq!(dial, packed, "dial vs packed at bound {bound}");
            assert_eq!(packed, wide, "packed vs wide at bound {bound}");
        }
    }

    #[test]
    fn packed_heap_matches_wide_heap_pushed_exactly() {
        // The packed key orders by (dist, node) exactly like the tuple heap,
        // so even tie-dependent stats must match between the two heap paths.
        let g = lcg_network(150, 400);
        let mut ws = DijkstraWorkspace::new(g.num_nodes());
        for bound in [5u64, 33, 250, 4000] {
            ws.begin_epoch();
            let p = ws.run_packed(&g, &[(3, 0), (99, 2)], bound, |_, _| Control::Continue);
            ws.begin_epoch();
            let w = ws.run_wide(&g, &[(3, 0), (99, 2)], bound, |_, _| Control::Continue);
            assert_eq!(p, w, "packed vs wide stats at bound {bound}");
        }
    }

    #[test]
    fn dial_early_stop_leaves_workspace_clean() {
        let g = lcg_network(100, 300);
        let mut ws = DijkstraWorkspace::new(g.num_nodes());
        // Stop mid-search (Dial path), then verify a fresh bounded run still
        // produces the exact settled set — stale bucket entries would
        // corrupt it.
        let mut seen = 0;
        ws.run(&g, &[(0, 0)], 500, |_, _| {
            seen += 1;
            if seen == 3 {
                Control::Stop
            } else {
                Control::Continue
            }
        });
        let after = settled_at_bound(&mut ws, &g, &[(0, 0)], 120);
        ws.begin_epoch();
        let mut reference = Vec::new();
        ws.run_wide(&g, &[(0, 0)], 120, |n, d| {
            reference.push((n, d));
            Control::Continue
        });
        reference.sort_unstable();
        assert_eq!(after, reference);
    }

    #[test]
    fn dial_settle_order_is_nondecreasing() {
        let g = lcg_network(120, 350);
        let mut ws = DijkstraWorkspace::new(g.num_nodes());
        let mut last = 0u64;
        ws.run(&g, &[(0, 0), (60, 5)], 800, |_, d| {
            assert!(d >= last, "settle order regressed: {d} after {last}");
            last = d;
            Control::Continue
        });
    }
}
