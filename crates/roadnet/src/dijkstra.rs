//! Reusable Dijkstra toolkit.
//!
//! Every shortest-path computation in the system — NPD-index construction
//! (Alg. 1), fragment query evaluation (Alg. 2), centralized ground truth,
//! and the baselines — goes through [`DijkstraWorkspace`]. The workspace owns
//! the distance array and the heap and is reused across runs with epoch
//! stamping, so repeated searches on a large graph do not pay O(n)
//! re-initialization (a pattern recommended by the Rust perf guides for hot
//! database loops).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::graph::Weight;
use crate::INF;

/// Minimal directed-graph abstraction used by the Dijkstra toolkit.
///
/// Implementations include [`crate::RoadNetwork`] (undirected: both arcs) and
/// the query engine's extended fragment graph (mixed directed/undirected).
pub trait Graph {
    /// Number of nodes; node ids are `0..num_nodes()`.
    fn num_nodes(&self) -> usize;
    /// Invoke `f(neighbor, weight)` for every outgoing arc of `node`.
    fn for_each_neighbor(&self, node: u32, f: &mut dyn FnMut(u32, Weight));
}

/// What the settle callback tells the search to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Keep relaxing this node's edges and continue.
    Continue,
    /// Do not relax this node's edges, but continue the search. Useful for
    /// pruned expansions (e.g. virtual keyword nodes must not be re-entered).
    SkipNeighbors,
    /// Stop the whole search now.
    Stop,
}

/// Per-run statistics, used by the Theorem 5 cost-model instrumentation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Nodes settled (popped with their final distance).
    pub settled: usize,
    /// Heap pushes performed (relaxations that improved a distance).
    pub pushed: usize,
}

/// A reusable single-source / multi-source Dijkstra workspace.
///
/// Distances are valid only for nodes whose stamp equals the current epoch;
/// `reset` is O(1) (bumps the epoch) except on epoch wrap, where it clears in
/// O(n) (happens once every ~4 billion runs).
#[derive(Debug)]
pub struct DijkstraWorkspace {
    dist: Vec<u64>,
    stamp: Vec<u32>,
    epoch: u32,
    heap: BinaryHeap<Reverse<(u64, u32)>>,
}

impl DijkstraWorkspace {
    /// Create a workspace able to address `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        DijkstraWorkspace {
            dist: vec![INF; num_nodes],
            stamp: vec![0; num_nodes],
            epoch: 0,
            heap: BinaryHeap::new(),
        }
    }

    /// Grow to accommodate `num_nodes` nodes (no-op if already large enough).
    pub fn ensure_capacity(&mut self, num_nodes: usize) {
        if self.dist.len() < num_nodes {
            self.dist.resize(num_nodes, INF);
            self.stamp.resize(num_nodes, 0);
        }
    }

    fn begin_epoch(&mut self) {
        self.heap.clear();
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
    }

    #[inline]
    fn current_dist(&self, node: u32) -> u64 {
        if self.stamp[node as usize] == self.epoch {
            self.dist[node as usize]
        } else {
            INF
        }
    }

    #[inline]
    fn set_dist(&mut self, node: u32, d: u64) {
        self.dist[node as usize] = d;
        self.stamp[node as usize] = self.epoch;
    }

    /// Distance computed by the **last** run for `node` (INF if untouched).
    /// Only settled nodes have final distances; unsettled stamped nodes hold
    /// tentative values that are still upper bounds.
    pub fn last_dist(&self, node: u32) -> u64 {
        self.current_dist(node)
    }

    /// Run Dijkstra from `sources` (each with an initial distance), bounded
    /// by `bound` (nodes farther than `bound` are neither settled nor
    /// reported). `on_settle(node, dist)` fires exactly once per settled node
    /// in nondecreasing distance order and steers the search via [`Control`].
    pub fn run<G: Graph + ?Sized>(
        &mut self,
        graph: &G,
        sources: &[(u32, u64)],
        bound: u64,
        mut on_settle: impl FnMut(u32, u64) -> Control,
    ) -> SearchStats {
        self.ensure_capacity(graph.num_nodes());
        self.begin_epoch();
        let mut stats = SearchStats::default();
        for &(s, d0) in sources {
            if d0 <= bound && d0 < self.current_dist(s) {
                self.set_dist(s, d0);
                self.heap.push(Reverse((d0, s)));
                stats.pushed += 1;
            }
        }
        while let Some(Reverse((d, u))) = self.heap.pop() {
            if d > self.current_dist(u) {
                continue; // stale heap entry
            }
            stats.settled += 1;
            match on_settle(u, d) {
                Control::Stop => break,
                Control::SkipNeighbors => continue,
                Control::Continue => {}
            }
            // Relax in place: split borrows so the adjacency closure can
            // update the distance arrays without a temporary allocation.
            let (dist, stamp, heap) = (&mut self.dist, &mut self.stamp, &mut self.heap);
            let epoch = self.epoch;
            let pushed = &mut stats.pushed;
            graph.for_each_neighbor(u, &mut |v, w| {
                let nd = d.saturating_add(u64::from(w));
                if nd <= bound {
                    let vi = v as usize;
                    let cur = if stamp[vi] == epoch { dist[vi] } else { INF };
                    if nd < cur {
                        dist[vi] = nd;
                        stamp[vi] = epoch;
                        heap.push(Reverse((nd, v)));
                        *pushed += 1;
                    }
                }
            });
        }
        stats
    }

    /// All-destinations distances from a single source, bounded by `bound`.
    /// Returns `(node, dist)` pairs for every reachable node within the
    /// bound, in nondecreasing distance order.
    pub fn distances_from<G: Graph + ?Sized>(
        &mut self,
        graph: &G,
        source: u32,
        bound: u64,
    ) -> Vec<(u32, u64)> {
        let mut out = Vec::new();
        self.run(graph, &[(source, 0)], bound, |n, d| {
            out.push((n, d));
            Control::Continue
        });
        out
    }

    /// Point-to-point distance with early termination.
    pub fn distance<G: Graph + ?Sized>(&mut self, graph: &G, source: u32, target: u32) -> u64 {
        let mut found = INF;
        self.run(graph, &[(source, 0)], INF - 1, |n, d| {
            if n == target {
                found = d;
                Control::Stop
            } else {
                Control::Continue
            }
        });
        found
    }

    /// Distance from `source` to the nearest member of `targets`.
    pub fn distance_to_any<G: Graph + ?Sized>(
        &mut self,
        graph: &G,
        source: u32,
        targets: &[u32],
    ) -> u64 {
        if targets.is_empty() {
            return INF;
        }
        let mut marks = std::collections::HashSet::with_capacity(targets.len());
        marks.extend(targets.iter().copied());
        let mut found = INF;
        self.run(graph, &[(source, 0)], INF - 1, |n, d| {
            if marks.contains(&n) {
                found = d;
                Control::Stop
            } else {
                Control::Continue
            }
        });
        found
    }

    /// Multi-source coverage: all nodes within `radius` of any source
    /// (sources seeded at distance 0). This is the direct form of the
    /// paper's *keyword coverage* when sources are the nodes containing the
    /// keyword.
    pub fn coverage<G: Graph + ?Sized>(
        &mut self,
        graph: &G,
        sources: &[u32],
        radius: u64,
    ) -> Vec<(u32, u64)> {
        let seeded: Vec<(u32, u64)> = sources.iter().map(|&s| (s, 0)).collect();
        let mut out = Vec::new();
        self.run(graph, &seeded, radius, |n, d| {
            out.push((n, d));
            Control::Continue
        });
        out
    }
}

/// Dijkstra with predecessor tracking, for extracting actual shortest paths.
/// Kept separate from [`DijkstraWorkspace`] because predecessor arrays are
/// only needed in tests, diagnostics and the generator.
pub fn shortest_path<G: Graph + ?Sized>(
    graph: &G,
    source: u32,
    target: u32,
) -> Option<(Vec<u32>, u64)> {
    let n = graph.num_nodes();
    let mut dist = vec![INF; n];
    let mut pred = vec![u32::MAX; n];
    let mut heap = BinaryHeap::new();
    dist[source as usize] = 0;
    heap.push(Reverse((0u64, source)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u as usize] {
            continue;
        }
        if u == target {
            break;
        }
        let mut relaxed = Vec::new();
        graph.for_each_neighbor(u, &mut |v, w| {
            relaxed.push((v, d.saturating_add(u64::from(w))));
        });
        for (v, nd) in relaxed {
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                pred[v as usize] = u;
                heap.push(Reverse((nd, v)));
            }
        }
    }
    if dist[target as usize] == INF {
        return None;
    }
    let mut path = vec![target];
    let mut cur = target;
    while cur != source {
        cur = pred[cur as usize];
        path.push(cur);
    }
    path.reverse();
    Some((path, dist[target as usize]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::figure1_network;

    #[test]
    fn figure1_distances_match_paper() {
        let (g, names) = figure1_network();
        let mut ws = DijkstraWorkspace::new(g.num_nodes());
        // Paper Example 1 geometry: B and E are within 3 of both "museum"
        // (node D) and "school" (node A), while A, C, D are not.
        let d_a = |t: &str, ws: &mut DijkstraWorkspace| ws.distance(&g, names["A"].0, names[t].0);
        assert_eq!(d_a("B", &mut ws), 2);
        assert_eq!(d_a("E", &mut ws), 1);
        assert_eq!(d_a("D", &mut ws), 4);
        assert_eq!(d_a("C", &mut ws), 4);
        let d_d = |t: &str, ws: &mut DijkstraWorkspace| ws.distance(&g, names["D"].0, names[t].0);
        assert_eq!(d_d("B", &mut ws), 2);
        assert_eq!(d_d("E", &mut ws), 3);
        assert_eq!(d_d("C", &mut ws), 4);
    }

    #[test]
    fn bounded_search_respects_radius() {
        let (g, names) = figure1_network();
        let mut ws = DijkstraWorkspace::new(g.num_nodes());
        let within_2: Vec<u32> =
            ws.distances_from(&g, names["A"].0, 2).into_iter().map(|(n, _)| n).collect();
        // A(0), E(1), B(2) — D is at 3, C at 4.
        assert_eq!(within_2.len(), 3);
        assert!(within_2.contains(&names["A"].0));
        assert!(within_2.contains(&names["E"].0));
        assert!(within_2.contains(&names["B"].0));
    }

    #[test]
    fn settle_order_is_nondecreasing() {
        let (g, names) = figure1_network();
        let mut ws = DijkstraWorkspace::new(g.num_nodes());
        let mut last = 0u64;
        ws.run(&g, &[(names["A"].0, 0)], INF - 1, |_, d| {
            assert!(d >= last);
            last = d;
            Control::Continue
        });
    }

    #[test]
    fn multi_source_coverage_matches_definition() {
        let (g, names) = figure1_network();
        let mut ws = DijkstraWorkspace::new(g.num_nodes());
        // Coverage of {A, D} (school ∪ museum sources) with radius 1:
        // A(0), D(0), E(1 via A).
        let cov = ws.coverage(&g, &[names["A"].0, names["D"].0], 1);
        let nodes: std::collections::HashSet<u32> = cov.iter().map(|&(n, _)| n).collect();
        assert_eq!(nodes, [names["A"].0, names["D"].0, names["E"].0].into_iter().collect());
    }

    #[test]
    fn workspace_reuse_across_epochs_is_correct() {
        let (g, names) = figure1_network();
        let mut ws = DijkstraWorkspace::new(g.num_nodes());
        for _ in 0..100 {
            assert_eq!(ws.distance(&g, names["A"].0, names["C"].0), 4);
            assert_eq!(ws.distance(&g, names["C"].0, names["A"].0), 4);
        }
    }

    #[test]
    fn stop_control_halts_search() {
        let (g, names) = figure1_network();
        let mut ws = DijkstraWorkspace::new(g.num_nodes());
        let mut settled = 0;
        ws.run(&g, &[(names["A"].0, 0)], INF - 1, |_, _| {
            settled += 1;
            Control::Stop
        });
        assert_eq!(settled, 1);
    }

    #[test]
    fn skip_neighbors_prunes_expansion() {
        let (g, names) = figure1_network();
        let mut ws = DijkstraWorkspace::new(g.num_nodes());
        // Refuse to expand anything: only sources get settled.
        let mut settled = Vec::new();
        ws.run(&g, &[(names["A"].0, 0), (names["D"].0, 0)], INF - 1, |n, _| {
            settled.push(n);
            Control::SkipNeighbors
        });
        settled.sort_unstable();
        let mut expect = vec![names["A"].0, names["D"].0];
        expect.sort_unstable();
        assert_eq!(settled, expect);
    }

    #[test]
    fn distance_to_any_picks_nearest_target() {
        let (g, names) = figure1_network();
        let mut ws = DijkstraWorkspace::new(g.num_nodes());
        let d = ws.distance_to_any(&g, names["E"].0, &[names["C"].0, names["B"].0]);
        // E→B = E→A→B(3) or E→D→B(3); C is farther.
        assert_eq!(d, 3);
        assert_eq!(ws.distance_to_any(&g, names["E"].0, &[]), INF);
    }

    #[test]
    fn unreachable_distance_is_inf() {
        use crate::graph::RoadNetworkBuilder;
        let mut b = RoadNetworkBuilder::new();
        let x = b.add_node(0.0, 0.0, &[]);
        let y = b.add_node(1.0, 0.0, &[]);
        let z = b.add_node(9.0, 9.0, &[]);
        b.add_edge(x, y, 1).unwrap();
        let g = b.build().unwrap();
        let mut ws = DijkstraWorkspace::new(g.num_nodes());
        assert_eq!(ws.distance(&g, x.0, z.0), INF);
    }

    #[test]
    fn shortest_path_extraction() {
        let (g, names) = figure1_network();
        let (path, d) = shortest_path(&g, names["A"].0, names["C"].0).unwrap();
        assert_eq!(d, 4);
        assert_eq!(path, vec![names["A"].0, names["B"].0, names["C"].0]);
        assert!(shortest_path(&g, names["A"].0, names["A"].0).is_some());
    }

    #[test]
    fn stats_count_settles_and_pushes() {
        let (g, names) = figure1_network();
        let mut ws = DijkstraWorkspace::new(g.num_nodes());
        let stats = ws.run(&g, &[(names["A"].0, 0)], INF - 1, |_, _| Control::Continue);
        assert_eq!(stats.settled, 5);
        assert!(stats.pushed >= 5);
    }
}
