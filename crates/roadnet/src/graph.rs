//! The road network `G(V, E, W, K, L)` (Definition 1 of the paper).
//!
//! Nodes are either *junctions* (no keywords) or *objects* (points of
//! interest carrying a keyword set). Edges are undirected with strictly
//! positive integer weights. The graph is stored in CSR form for cache-
//! friendly traversal, together with an inverted keyword → nodes index.

use std::collections::HashMap;

use bytes::{Buf, BufMut};

use crate::codec::{Decode, Encode};
use crate::dijkstra::Graph;
use crate::error::{DecodeError, RoadNetError};
use crate::vocab::{KeywordId, Vocabulary};

/// Dense node identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl Encode for NodeId {
    fn encode(&self, buf: &mut impl BufMut) {
        self.0.encode(buf);
    }
}
impl Decode for NodeId {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        Ok(NodeId(u32::decode(buf)?))
    }
}

/// Edge weight (road-segment length). Strictly positive.
pub type Weight = u32;

/// Incremental builder for a [`RoadNetwork`].
///
/// ```
/// use disks_roadnet::{RoadNetworkBuilder};
///
/// let mut b = RoadNetworkBuilder::new();
/// let a = b.add_node(0.0, 0.0, &["school"]);
/// let c = b.add_node(1.0, 0.0, &[]);
/// b.add_edge(a, c, 5).unwrap();
/// let g = b.build().unwrap();
/// assert_eq!(g.num_nodes(), 2);
/// assert_eq!(g.num_edges(), 1);
/// ```
#[derive(Debug, Default)]
pub struct RoadNetworkBuilder {
    coords: Vec<(f32, f32)>,
    node_keywords: Vec<Vec<KeywordId>>,
    edges: Vec<(u32, u32, Weight)>,
    vocab: Vocabulary,
}

impl RoadNetworkBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes added so far.
    pub fn num_nodes(&self) -> usize {
        self.coords.len()
    }

    /// Access the vocabulary being built (for pre-interning keywords).
    pub fn vocab_mut(&mut self) -> &mut Vocabulary {
        &mut self.vocab
    }

    /// Add a node at `(x, y)` with the given keyword strings. An empty slice
    /// makes it a junction node.
    pub fn add_node(&mut self, x: f32, y: f32, keywords: &[&str]) -> NodeId {
        let kws: Vec<KeywordId> = keywords.iter().map(|w| self.vocab.intern(w)).collect();
        self.add_node_with_ids(x, y, kws)
    }

    /// Add a node whose keywords are already interned ids.
    pub fn add_node_with_ids(&mut self, x: f32, y: f32, mut keywords: Vec<KeywordId>) -> NodeId {
        keywords.sort_unstable();
        keywords.dedup();
        let id = NodeId(u32::try_from(self.coords.len()).expect("node count exceeds u32::MAX"));
        self.coords.push((x, y));
        self.node_keywords.push(keywords);
        id
    }

    /// Add an undirected edge. Duplicate `(a, b)` pairs are collapsed at
    /// build time keeping the minimum weight.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId, weight: Weight) -> Result<(), RoadNetError> {
        if a == b {
            return Err(RoadNetError::SelfLoop(a.0));
        }
        if weight == 0 {
            return Err(RoadNetError::InvalidWeight { a: a.0, b: b.0, weight });
        }
        let n = self.coords.len() as u32;
        if a.0 >= n {
            return Err(RoadNetError::UnknownNode(a.0));
        }
        if b.0 >= n {
            return Err(RoadNetError::UnknownNode(b.0));
        }
        let (lo, hi) = if a.0 < b.0 { (a.0, b.0) } else { (b.0, a.0) };
        self.edges.push((lo, hi, weight));
        Ok(())
    }

    /// Finalize into an immutable CSR [`RoadNetwork`].
    pub fn build(mut self) -> Result<RoadNetwork, RoadNetError> {
        let n = self.coords.len();
        // Deduplicate parallel edges, keeping the minimum weight (a longer
        // parallel road can never be on a shortest path).
        self.edges.sort_unstable();
        self.edges.dedup_by(|next, prev| {
            if next.0 == prev.0 && next.1 == prev.1 {
                prev.2 = prev.2.min(next.2);
                true
            } else {
                false
            }
        });

        let mut degree = vec![0u32; n];
        for &(a, b, _) in &self.edges {
            degree[a as usize] += 1;
            degree[b as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u64;
        offsets.push(0u32);
        for &d in &degree {
            acc += u64::from(d);
            let off = u32::try_from(acc)
                .map_err(|_| RoadNetError::Validation("adjacency exceeds u32 offsets".into()))?;
            offsets.push(off);
        }
        let total = acc as usize;
        let mut adj_node = vec![0u32; total];
        let mut adj_weight = vec![0u32; total];
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        for &(a, b, w) in &self.edges {
            let ca = cursor[a as usize] as usize;
            adj_node[ca] = b;
            adj_weight[ca] = w;
            cursor[a as usize] += 1;
            let cb = cursor[b as usize] as usize;
            adj_node[cb] = a;
            adj_weight[cb] = w;
            cursor[b as usize] += 1;
        }

        // Keyword CSR + inverted index.
        let mut kw_offsets = Vec::with_capacity(n + 1);
        kw_offsets.push(0u32);
        let mut kw_pool = Vec::new();
        for kws in &self.node_keywords {
            kw_pool.extend_from_slice(kws);
            kw_offsets.push(
                u32::try_from(kw_pool.len())
                    .map_err(|_| RoadNetError::Validation("keyword pool exceeds u32".into()))?,
            );
        }
        let vocab_len = self.vocab.len();
        let mut inv: Vec<Vec<NodeId>> = vec![Vec::new(); vocab_len];
        for (node, kws) in self.node_keywords.iter().enumerate() {
            for &k in kws {
                if k.index() >= vocab_len {
                    return Err(RoadNetError::Validation(format!(
                        "node {node} references out-of-vocabulary keyword {k}"
                    )));
                }
                inv[k.index()].push(NodeId(node as u32));
            }
        }
        let mut inv_offsets = Vec::with_capacity(vocab_len + 1);
        inv_offsets.push(0u32);
        let mut inv_pool = Vec::new();
        for nodes in &inv {
            inv_pool.extend_from_slice(nodes);
            inv_offsets.push(inv_pool.len() as u32);
        }

        let total_weight: u64 = self.edges.iter().map(|&(_, _, w)| u64::from(w)).sum();
        let avg_edge_weight =
            if self.edges.is_empty() { 0 } else { (total_weight / self.edges.len() as u64).max(1) };

        Ok(RoadNetwork {
            coords: self.coords,
            adj_offsets: offsets,
            adj_node,
            adj_weight,
            kw_offsets,
            kw_pool,
            inv_offsets,
            inv_pool,
            vocab: self.vocab,
            num_edges: self.edges.len(),
            avg_edge_weight,
        })
    }
}

/// An immutable road network in CSR form.
#[derive(Debug, Clone)]
pub struct RoadNetwork {
    coords: Vec<(f32, f32)>,
    adj_offsets: Vec<u32>,
    adj_node: Vec<u32>,
    adj_weight: Vec<u32>,
    kw_offsets: Vec<u32>,
    kw_pool: Vec<KeywordId>,
    inv_offsets: Vec<u32>,
    inv_pool: Vec<NodeId>,
    vocab: Vocabulary,
    num_edges: usize,
    avg_edge_weight: u64,
}

impl RoadNetwork {
    pub fn num_nodes(&self) -> usize {
        self.coords.len()
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Average edge weight `ē` (used for `maxR = λ·ē`, §3.7). At least 1.
    pub fn avg_edge_weight(&self) -> u64 {
        self.avg_edge_weight
    }

    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    pub fn coord(&self, node: NodeId) -> (f32, f32) {
        self.coords[node.index()]
    }

    /// Neighbors of `node` as `(neighbor, weight)` pairs.
    #[inline]
    pub fn neighbors(&self, node: NodeId) -> impl Iterator<Item = (NodeId, Weight)> + '_ {
        let lo = self.adj_offsets[node.index()] as usize;
        let hi = self.adj_offsets[node.index() + 1] as usize;
        self.adj_node[lo..hi].iter().zip(&self.adj_weight[lo..hi]).map(|(&n, &w)| (NodeId(n), w))
    }

    /// Degree of `node`.
    pub fn degree(&self, node: NodeId) -> usize {
        (self.adj_offsets[node.index() + 1] - self.adj_offsets[node.index()]) as usize
    }

    /// Weight of the edge `(a, b)` if it exists.
    pub fn edge_weight(&self, a: NodeId, b: NodeId) -> Option<Weight> {
        self.neighbors(a).find(|&(n, _)| n == b).map(|(_, w)| w)
    }

    /// True if the original graph has edge `(a, b)`.
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.edge_weight(a, b).is_some()
    }

    /// The keyword set `L(node)`; empty for junctions.
    #[inline]
    pub fn keywords(&self, node: NodeId) -> &[KeywordId] {
        let lo = self.kw_offsets[node.index()] as usize;
        let hi = self.kw_offsets[node.index() + 1] as usize;
        &self.kw_pool[lo..hi]
    }

    /// True iff the node carries at least one keyword (an *object* node).
    #[inline]
    pub fn is_object(&self, node: NodeId) -> bool {
        self.kw_offsets[node.index()] != self.kw_offsets[node.index() + 1]
    }

    /// True iff `node` contains keyword `kw` (binary search; keyword lists
    /// are sorted at build time).
    #[inline]
    pub fn contains_keyword(&self, node: NodeId, kw: KeywordId) -> bool {
        self.keywords(node).binary_search(&kw).is_ok()
    }

    /// All nodes containing `kw`, via the inverted index.
    pub fn nodes_with_keyword(&self, kw: KeywordId) -> &[NodeId] {
        if kw.index() + 1 >= self.inv_offsets.len() {
            return &[];
        }
        let lo = self.inv_offsets[kw.index()] as usize;
        let hi = self.inv_offsets[kw.index() + 1] as usize;
        &self.inv_pool[lo..hi]
    }

    /// Number of object nodes.
    pub fn num_objects(&self) -> usize {
        (0..self.num_nodes()).filter(|&i| self.is_object(NodeId(i as u32))).count()
    }

    /// Iterate all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.coords.len() as u32).map(NodeId)
    }

    /// Iterate each undirected edge once as `(a, b, w)` with `a < b`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, Weight)> + '_ {
        self.node_ids().flat_map(move |a| {
            self.neighbors(a).filter(move |&(b, _)| a < b).map(move |(b, w)| (a, b, w))
        })
    }

    /// Check structural invariants: symmetric adjacency, positive weights,
    /// sorted keyword lists, consistent inverted index.
    pub fn validate(&self) -> Result<(), RoadNetError> {
        for a in self.node_ids() {
            for (b, w) in self.neighbors(a) {
                if w == 0 {
                    return Err(RoadNetError::InvalidWeight { a: a.0, b: b.0, weight: w });
                }
                if b.index() >= self.num_nodes() {
                    return Err(RoadNetError::UnknownNode(b.0));
                }
                if self.edge_weight(b, a) != Some(w) {
                    return Err(RoadNetError::Validation(format!(
                        "asymmetric adjacency between {a} and {b}"
                    )));
                }
            }
            let kws = self.keywords(a);
            if kws.windows(2).any(|w| w[0] >= w[1]) {
                return Err(RoadNetError::Validation(format!(
                    "keyword list of {a} is not strictly sorted"
                )));
            }
            for &k in kws {
                if !self.nodes_with_keyword(k).contains(&a) {
                    return Err(RoadNetError::Validation(format!(
                        "inverted index missing ({k}, {a})"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Connected components as a node → component-id labelling plus count.
    pub fn connected_components(&self) -> (Vec<u32>, usize) {
        let n = self.num_nodes();
        let mut label = vec![u32::MAX; n];
        let mut count = 0u32;
        let mut stack = Vec::new();
        for start in 0..n {
            if label[start] != u32::MAX {
                continue;
            }
            label[start] = count;
            stack.push(start as u32);
            while let Some(u) = stack.pop() {
                for (v, _) in self.neighbors(NodeId(u)) {
                    if label[v.index()] == u32::MAX {
                        label[v.index()] = count;
                        stack.push(v.0);
                    }
                }
            }
            count += 1;
        }
        (label, count as usize)
    }

    /// True if the graph is connected (or empty).
    pub fn is_connected(&self) -> bool {
        self.connected_components().1 <= 1
    }

    /// Restrict to the largest connected component, renumbering nodes.
    /// Returns the new network and the old→new id mapping (None = dropped).
    pub fn largest_component(&self) -> (RoadNetwork, Vec<Option<NodeId>>) {
        let (label, count) = self.connected_components();
        if count <= 1 {
            let mapping = (0..self.num_nodes() as u32).map(|i| Some(NodeId(i))).collect();
            return (self.clone(), mapping);
        }
        let mut sizes = vec![0usize; count];
        for &l in &label {
            sizes[l as usize] += 1;
        }
        let keep =
            sizes.iter().enumerate().max_by_key(|&(_, s)| *s).map(|(i, _)| i as u32).unwrap_or(0);
        let mut builder = RoadNetworkBuilder::new();
        builder.vocab = self.vocab.clone();
        let mut mapping: Vec<Option<NodeId>> = vec![None; self.num_nodes()];
        for old in self.node_ids() {
            if label[old.index()] == keep {
                let (x, y) = self.coord(old);
                let new = builder.add_node_with_ids(x, y, self.keywords(old).to_vec());
                mapping[old.index()] = Some(new);
            }
        }
        for (a, b, w) in self.edges() {
            if let (Some(na), Some(nb)) = (mapping[a.index()], mapping[b.index()]) {
                builder.add_edge(na, nb, w).expect("remapped edge must be valid");
            }
        }
        let net = builder.build().expect("largest component rebuild cannot fail");
        (net, mapping)
    }

    /// Keyword frequency table: `freq[k] = |{nodes containing k}|`.
    pub fn keyword_frequencies(&self) -> Vec<usize> {
        (0..self.vocab.len()).map(|k| self.nodes_with_keyword(KeywordId(k as u32)).len()).collect()
    }

    /// Approximate in-memory size in bytes (CSR arrays + keyword pools).
    pub fn memory_bytes(&self) -> usize {
        self.coords.len() * std::mem::size_of::<(f32, f32)>()
            + self.adj_offsets.len() * 4
            + self.adj_node.len() * 4
            + self.adj_weight.len() * 4
            + self.kw_offsets.len() * 4
            + self.kw_pool.len() * 4
            + self.inv_offsets.len() * 4
            + self.inv_pool.len() * 4
    }
}

impl Graph for RoadNetwork {
    #[inline]
    fn num_nodes(&self) -> usize {
        self.coords.len()
    }

    #[inline]
    fn for_each_neighbor(&self, node: u32, f: &mut dyn FnMut(u32, Weight)) {
        let lo = self.adj_offsets[node as usize] as usize;
        let hi = self.adj_offsets[node as usize + 1] as usize;
        for i in lo..hi {
            f(self.adj_node[i], self.adj_weight[i]);
        }
    }
}

impl Encode for RoadNetwork {
    fn encode(&self, buf: &mut impl BufMut) {
        self.vocab.encode(buf);
        crate::codec::encode_len(self.num_nodes(), buf);
        for i in 0..self.num_nodes() {
            let (x, y) = self.coords[i];
            x.encode(buf);
            y.encode(buf);
            let kws = self.keywords(NodeId(i as u32));
            crate::codec::encode_len(kws.len(), buf);
            for k in kws {
                k.encode(buf);
            }
        }
        crate::codec::encode_len(self.num_edges, buf);
        for (a, b, w) in self.edges() {
            a.encode(buf);
            b.encode(buf);
            w.encode(buf);
        }
    }
}

impl Decode for RoadNetwork {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        let vocab = Vocabulary::decode(buf)?;
        let n = crate::codec::decode_len(buf, "RoadNetwork.nodes")?;
        let mut builder = RoadNetworkBuilder::new();
        builder.vocab = vocab;
        for _ in 0..n {
            let x = f32::decode(buf)?;
            let y = f32::decode(buf)?;
            let nk = crate::codec::decode_len(buf, "RoadNetwork.node_keywords")?;
            let mut kws = Vec::with_capacity(nk);
            for _ in 0..nk {
                kws.push(KeywordId::decode(buf)?);
            }
            builder.add_node_with_ids(x, y, kws);
        }
        let m = crate::codec::decode_len(buf, "RoadNetwork.edges")?;
        for _ in 0..m {
            let a = NodeId::decode(buf)?;
            let b = NodeId::decode(buf)?;
            let w = u32::decode(buf)?;
            builder.add_edge(a, b, w).map_err(|_| DecodeError::LengthOutOfRange {
                context: "RoadNetwork.edge",
                len: u64::from(a.0),
            })?;
        }
        builder.build().map_err(|_| DecodeError::LengthOutOfRange {
            context: "RoadNetwork.build",
            len: n as u64,
        })
    }
}

/// Summary statistics in the shape of the paper's Table 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkStats {
    pub nodes: usize,
    pub objects: usize,
    pub edges: usize,
    pub keywords: usize,
    pub avg_edge_weight: u64,
}

impl RoadNetwork {
    pub fn stats(&self) -> NetworkStats {
        NetworkStats {
            nodes: self.num_nodes(),
            objects: self.num_objects(),
            edges: self.num_edges(),
            keywords: self.vocab.len(),
            avg_edge_weight: self.avg_edge_weight,
        }
    }
}

/// Build the small example network of the paper's Fig. 1 — handy in tests and
/// doc examples. Nodes: A(school), B(cinema), C(shop), D(museum), E(junction).
/// Weights are chosen so the paper's Examples 1–3 hold literally:
/// `SGKQ({museum, school}, 3) = {B, E}`, `R(school, 3) = {A, B, E}`, and
/// `RKQ(B, {museum}, 4) = {D}`.
pub fn figure1_network() -> (RoadNetwork, HashMap<&'static str, NodeId>) {
    let mut b = RoadNetworkBuilder::new();
    let a = b.add_node(0.0, 1.0, &["school"]);
    let bb = b.add_node(1.0, 1.0, &["cinema"]);
    let c = b.add_node(2.0, 1.0, &["shop"]);
    let d = b.add_node(1.0, 0.0, &["museum"]);
    let e = b.add_node(0.5, 0.5, &[]);
    b.add_edge(a, bb, 2).unwrap();
    b.add_edge(bb, c, 2).unwrap();
    b.add_edge(a, e, 1).unwrap();
    b.add_edge(e, d, 3).unwrap();
    b.add_edge(bb, d, 2).unwrap();
    let g = b.build().unwrap();
    let mut names = HashMap::new();
    names.insert("A", a);
    names.insert("B", bb);
    names.insert("C", c);
    names.insert("D", d);
    names.insert("E", e);
    (g, names)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_constructs_symmetric_csr() {
        let (g, names) = figure1_network();
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 5);
        g.validate().unwrap();
        let a = names["A"];
        let b = names["B"];
        assert_eq!(g.edge_weight(a, b), Some(2));
        assert_eq!(g.edge_weight(b, a), Some(2));
        assert_eq!(g.degree(names["E"]), 2);
    }

    #[test]
    fn keywords_and_inverted_index_agree() {
        let (g, names) = figure1_network();
        let museum = g.vocab().get("museum").unwrap();
        assert!(g.contains_keyword(names["D"], museum));
        assert!(!g.contains_keyword(names["A"], museum));
        assert_eq!(g.nodes_with_keyword(museum), &[names["D"]]);
        assert!(g.is_object(names["A"]));
        assert!(!g.is_object(names["E"]));
        assert_eq!(g.num_objects(), 4);
    }

    #[test]
    fn duplicate_edges_keep_min_weight() {
        let mut b = RoadNetworkBuilder::new();
        let x = b.add_node(0.0, 0.0, &[]);
        let y = b.add_node(1.0, 0.0, &[]);
        b.add_edge(x, y, 9).unwrap();
        b.add_edge(y, x, 4).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight(x, y), Some(4));
    }

    #[test]
    fn invalid_edges_rejected() {
        let mut b = RoadNetworkBuilder::new();
        let x = b.add_node(0.0, 0.0, &[]);
        let y = b.add_node(1.0, 0.0, &[]);
        assert!(matches!(b.add_edge(x, x, 1), Err(RoadNetError::SelfLoop(_))));
        assert!(matches!(b.add_edge(x, y, 0), Err(RoadNetError::InvalidWeight { .. })));
        assert!(matches!(b.add_edge(x, NodeId(99), 1), Err(RoadNetError::UnknownNode(99))));
    }

    #[test]
    fn duplicate_keywords_on_node_are_deduped() {
        let mut b = RoadNetworkBuilder::new();
        let x = b.add_node(0.0, 0.0, &["cafe", "CAFE", "cafe"]);
        let g = b.build().unwrap();
        assert_eq!(g.keywords(x).len(), 1);
    }

    #[test]
    fn connected_components_and_largest() {
        let mut b = RoadNetworkBuilder::new();
        let a = b.add_node(0.0, 0.0, &["x"]);
        let c = b.add_node(1.0, 0.0, &[]);
        let d = b.add_node(5.0, 5.0, &["y"]);
        b.add_edge(a, c, 1).unwrap();
        let g = b.build().unwrap();
        let (_, count) = g.connected_components();
        assert_eq!(count, 2);
        assert!(!g.is_connected());
        let (big, mapping) = g.largest_component();
        assert_eq!(big.num_nodes(), 2);
        assert!(big.is_connected());
        assert!(mapping[a.index()].is_some());
        assert!(mapping[d.index()].is_none());
        // The vocabulary is preserved even if keyword "y" no longer occurs.
        assert!(big.vocab().get("y").is_some());
        assert!(big.nodes_with_keyword(big.vocab().get("y").unwrap()).is_empty());
    }

    #[test]
    fn avg_edge_weight_matches_paper_parameterization() {
        let (g, _) = figure1_network();
        // weights: 2+2+1+3+2 = 10 over 5 edges → 2
        assert_eq!(g.avg_edge_weight(), 2);
    }

    #[test]
    fn codec_round_trip_preserves_structure() {
        use bytes::BytesMut;
        let (g, names) = figure1_network();
        let mut buf = BytesMut::new();
        g.encode(&mut buf);
        let mut bytes = buf.freeze();
        let back = RoadNetwork::decode(&mut bytes).unwrap();
        assert_eq!(back.num_nodes(), g.num_nodes());
        assert_eq!(back.num_edges(), g.num_edges());
        assert_eq!(back.edge_weight(names["A"], names["B"]), Some(2));
        let school = back.vocab().get("school").unwrap();
        assert_eq!(back.nodes_with_keyword(school), &[names["A"]]);
        back.validate().unwrap();
    }

    #[test]
    fn stats_table1_shape() {
        let (g, _) = figure1_network();
        let s = g.stats();
        assert_eq!(s.nodes, 5);
        assert_eq!(s.objects, 4);
        assert_eq!(s.edges, 5);
        assert_eq!(s.keywords, 4);
    }

    #[test]
    fn edges_iterator_yields_each_edge_once() {
        let (g, _) = figure1_network();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 5);
        for (a, b, _) in edges {
            assert!(a < b);
        }
    }
}
