//! Road-network graph substrate for the DISKS system.
//!
//! This crate provides everything the NPD-index (EDBT 2014, "Distributed
//! Spatial Keyword Querying on Road Networks") needs from the underlying
//! road network:
//!
//! * [`RoadNetwork`] — an edge-weighted undirected graph in CSR form with two
//!   kinds of nodes (road junctions and objects), a keyword vocabulary, a
//!   per-node keyword mapping `L`, and an inverted keyword→nodes index.
//! * [`dijkstra`] — a reusable Dijkstra toolkit (bounded searches,
//!   multi-source searches, predecessor tracking) shared by index
//!   construction, query evaluation and the baselines.
//! * [`generator`] — deterministic synthetic road-network generators that
//!   substitute for the paper's OpenStreetMap extracts (see `DESIGN.md` §4).
//! * [`io`] / [`codec`] — text and binary (de)serialization.
//!
//! Distances are `u64` with [`INF`] as the unreachable sentinel; edge weights
//! are strictly positive `u32`s, so sums over paths of any realistic length
//! cannot overflow.

pub mod codec;
pub mod digraph;
pub mod dijkstra;
pub mod error;
pub mod generator;
pub mod graph;
pub mod io;
pub mod vocab;
pub mod zipf;

pub use dijkstra::{kernel_for, DijkstraWorkspace, Graph, Kernel};
pub use error::{DecodeError, RoadNetError};
pub use graph::{NodeId, RoadNetwork, RoadNetworkBuilder, Weight};
pub use vocab::{KeywordId, Vocabulary};

/// Sentinel distance for "unreachable".
pub const INF: u64 = u64::MAX;
