//! Minimal hand-written binary codec over [`bytes`].
//!
//! Used for index persistence and for the cluster wire protocol. A
//! hand-written codec (rather than a serde backend) keeps the byte accounting
//! in the distributed experiments exact and auditable: every encoded byte is
//! visible in this file.
//!
//! All integers are little-endian fixed width. Collections are length-prefixed
//! with `u32`. Strings are UTF-8 with a `u32` byte-length prefix.

use bytes::{Buf, BufMut};

use crate::error::DecodeError;

/// Sanity bound on any decoded length prefix (counts, not bytes), to fail fast
/// on corrupt input instead of attempting a huge allocation.
pub const MAX_LEN: u64 = 1 << 32;

/// Extension helpers for encoding.
pub trait Encode {
    fn encode(&self, buf: &mut impl BufMut);
}

/// Extension helpers for decoding. Decoding never panics on malformed input;
/// it returns [`DecodeError`].
pub trait Decode: Sized {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError>;
}

#[inline]
fn need(buf: &impl Buf, n: usize) -> Result<(), DecodeError> {
    if buf.remaining() < n {
        Err(DecodeError::UnexpectedEof { needed: n, remaining: buf.remaining() })
    } else {
        Ok(())
    }
}

impl Encode for u8 {
    fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u8(*self);
    }
}
impl Decode for u8 {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        need(buf, 1)?;
        Ok(buf.get_u8())
    }
}

impl Encode for u16 {
    fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u16_le(*self);
    }
}
impl Decode for u16 {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        need(buf, 2)?;
        Ok(buf.get_u16_le())
    }
}

impl Encode for u32 {
    fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u32_le(*self);
    }
}
impl Decode for u32 {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        need(buf, 4)?;
        Ok(buf.get_u32_le())
    }
}

impl Encode for u64 {
    fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u64_le(*self);
    }
}
impl Decode for u64 {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        need(buf, 8)?;
        Ok(buf.get_u64_le())
    }
}

impl Encode for f32 {
    fn encode(&self, buf: &mut impl BufMut) {
        buf.put_f32_le(*self);
    }
}
impl Decode for f32 {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        need(buf, 4)?;
        Ok(buf.get_f32_le())
    }
}

impl Encode for bool {
    fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u8(u8::from(*self));
    }
}
impl Decode for bool {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        match u8::decode(buf)? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(DecodeError::BadTag { context: "bool", tag }),
        }
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, buf: &mut impl BufMut) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
}
impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        Ok((A::decode(buf)?, B::decode(buf)?))
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, buf: &mut impl BufMut) {
        encode_len(self.len(), buf);
        for item in self {
            item.encode(buf);
        }
    }
}
impl<T: Decode> Decode for Vec<T> {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        let len = decode_len(buf, "Vec")?;
        let mut out = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            out.push(T::decode(buf)?);
        }
        Ok(out)
    }
}

impl Encode for String {
    fn encode(&self, buf: &mut impl BufMut) {
        encode_len(self.len(), buf);
        buf.put_slice(self.as_bytes());
    }
}
impl Decode for String {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        let len = decode_len(buf, "String")?;
        need(buf, len)?;
        let mut bytes = vec![0u8; len];
        buf.copy_to_slice(&mut bytes);
        String::from_utf8(bytes).map_err(|_| DecodeError::BadUtf8)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, buf: &mut impl BufMut) {
        match self {
            None => buf.put_u8(0),
            Some(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
        }
    }
}
impl<T: Decode> Decode for Option<T> {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        match u8::decode(buf)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            tag => Err(DecodeError::BadTag { context: "Option", tag }),
        }
    }
}

/// Encode a collection length as `u32`.
///
/// # Panics
/// Panics if `len` exceeds `u32::MAX`; the system never produces collections
/// that large (node ids themselves are `u32`).
pub fn encode_len(len: usize, buf: &mut impl BufMut) {
    let len32 = u32::try_from(len).expect("collection length exceeds u32::MAX");
    buf.put_u32_le(len32);
}

/// Decode a `u32` collection length with a sanity bound.
pub fn decode_len(buf: &mut impl Buf, context: &'static str) -> Result<usize, DecodeError> {
    let len = u64::from(u32::decode(buf)?);
    if len > MAX_LEN {
        return Err(DecodeError::LengthOutOfRange { context, len });
    }
    Ok(len as usize)
}

/// Encode a magic+version header.
pub fn encode_header(magic: u32, buf: &mut impl BufMut) {
    buf.put_u32_le(magic);
}

/// Check a magic+version header.
pub fn decode_header(buf: &mut impl Buf, expected: u32) -> Result<(), DecodeError> {
    let found = u32::decode(buf)?;
    if found != expected {
        return Err(DecodeError::BadHeader { expected, found });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    fn round_trip<T: Encode + Decode + PartialEq + std::fmt::Debug>(value: T) {
        let mut buf = BytesMut::new();
        value.encode(&mut buf);
        let mut bytes = buf.freeze();
        let decoded = T::decode(&mut bytes).expect("decode");
        assert_eq!(decoded, value);
        assert_eq!(bytes.remaining(), 0, "decoder must consume exactly what was encoded");
    }

    #[test]
    fn primitive_round_trips() {
        round_trip(0u8);
        round_trip(255u8);
        round_trip(0xbeefu16);
        round_trip(0xdead_beefu32);
        round_trip(u64::MAX);
        round_trip(true);
        round_trip(false);
        round_trip(3.25f32);
    }

    #[test]
    fn composite_round_trips() {
        round_trip(vec![1u32, 2, 3]);
        round_trip(Vec::<u64>::new());
        round_trip("hello keywords".to_string());
        round_trip(String::new());
        round_trip(Some(7u32));
        round_trip(Option::<u32>::None);
        round_trip(vec![(1u32, 2u64), (3, 4)]);
    }

    #[test]
    fn truncated_input_fails_cleanly() {
        let mut buf = BytesMut::new();
        vec![1u32, 2, 3].encode(&mut buf);
        let full = buf.freeze();
        for cut in 0..full.len() {
            let mut slice = full.slice(0..cut);
            let res = Vec::<u32>::decode(&mut slice);
            assert!(res.is_err(), "prefix of length {cut} must fail to decode");
        }
    }

    #[test]
    fn bad_bool_tag_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        let mut bytes = buf.freeze();
        assert!(matches!(bool::decode(&mut bytes), Err(DecodeError::BadTag { .. })));
    }

    #[test]
    fn bad_option_tag_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(9);
        let mut bytes = buf.freeze();
        assert!(matches!(Option::<u32>::decode(&mut bytes), Err(DecodeError::BadTag { .. })));
    }

    #[test]
    fn header_mismatch_rejected() {
        let mut buf = BytesMut::new();
        encode_header(0x1111_2222, &mut buf);
        let mut bytes = buf.freeze();
        assert!(matches!(
            decode_header(&mut bytes, 0x3333_4444),
            Err(DecodeError::BadHeader { .. })
        ));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut buf = BytesMut::new();
        encode_len(2, &mut buf);
        buf.put_slice(&[0xff, 0xfe]);
        let mut bytes = buf.freeze();
        assert_eq!(String::decode(&mut bytes), Err(DecodeError::BadUtf8));
    }
}
