//! Zipf-distributed sampling for keyword frequencies.
//!
//! The paper's query generator "chooses keywords according to their
//! frequency" and real keyword frequencies are heavily skewed; we model the
//! keyword popularity distribution as Zipf(s) over ranks `1..=n`, sampled via
//! a precomputed cumulative table with binary search (O(log n) per sample).

use rand::Rng;

/// A Zipf(s) sampler over `0..n` (rank 0 is the most frequent item).
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Create a sampler over `n` ranks with exponent `s` (s = 1.0 is the
    /// classic Zipf law).
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf requires at least one rank");
        assert!(s.is_finite(), "Zipf exponent must be finite");
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(s);
            cumulative.push(acc);
        }
        let total = acc;
        for c in &mut cumulative {
            *c /= total;
        }
        // Guard against floating point leaving the last bucket slightly <1.
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        Zipf { cumulative }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Sample a rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen::<f64>();
        match self.cumulative.binary_search_by(|c| c.partial_cmp(&u).expect("finite")) {
            Ok(i) => i,
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }

    /// Probability mass of `rank`.
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank >= self.cumulative.len() {
            return 0.0;
        }
        if rank == 0 {
            self.cumulative[0]
        } else {
            self.cumulative[rank] - self.cumulative[rank - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(100, 1.0);
        let total: f64 = (0..100).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rank_zero_is_most_frequent() {
        let z = Zipf::new(50, 1.0);
        for r in 1..50 {
            assert!(z.pmf(0) >= z.pmf(r));
        }
    }

    #[test]
    fn samples_follow_skew() {
        let z = Zipf::new(10, 1.0);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0usize; 10];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Rank 0 should dominate rank 9 by roughly 10x under Zipf(1).
        assert!(counts[0] > counts[9] * 4, "counts: {counts:?}");
        assert!(counts.iter().all(|&c| c > 0), "all ranks should appear: {counts:?}");
    }

    #[test]
    fn single_rank_always_sampled() {
        let z = Zipf::new(1, 1.2);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
