//! Text and binary persistence for road networks.
//!
//! The text format is line oriented and diff-friendly:
//!
//! ```text
//! # disks road network v1
//! nodes 3
//! 0 0.5 1.5 school,park
//! 1 2.0 1.0 -
//! 2 0.0 0.0 museum
//! edges 2
//! 0 1 150
//! 1 2 75
//! ```
//!
//! `-` marks a junction (no keywords). The binary format reuses the
//! [`crate::codec`] encoding of [`RoadNetwork`] behind a magic header.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use bytes::{Bytes, BytesMut};

use crate::codec::{decode_header, encode_header, Decode, Encode};
use crate::error::RoadNetError;
use crate::graph::{NodeId, RoadNetwork, RoadNetworkBuilder};

/// Magic header for the binary network format ("DSKN" + version 1).
pub const NETWORK_MAGIC: u32 = 0x4453_4B01;

/// Write the text format.
pub fn write_text(net: &RoadNetwork, mut out: impl Write) -> Result<(), RoadNetError> {
    writeln!(out, "# disks road network v1")?;
    writeln!(out, "nodes {}", net.num_nodes())?;
    for n in net.node_ids() {
        let (x, y) = net.coord(n);
        let kws = net.keywords(n);
        if kws.is_empty() {
            writeln!(out, "{} {} {} -", n.0, x, y)?;
        } else {
            let words: Vec<&str> =
                kws.iter().map(|&k| net.vocab().word(k).unwrap_or("?")).collect();
            writeln!(out, "{} {} {} {}", n.0, x, y, words.join(","))?;
        }
    }
    writeln!(out, "edges {}", net.num_edges())?;
    for (a, b, w) in net.edges() {
        writeln!(out, "{} {} {}", a.0, b.0, w)?;
    }
    Ok(())
}

/// Read the text format.
pub fn read_text(input: impl Read) -> Result<RoadNetwork, RoadNetError> {
    let reader = BufReader::new(input);
    let mut lines = reader.lines();
    let mut next_line = || -> Result<Option<String>, RoadNetError> {
        for line in lines.by_ref() {
            let line = line?;
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            return Ok(Some(trimmed.to_string()));
        }
        Ok(None)
    };

    let header = next_line()?.ok_or_else(|| RoadNetError::Parse("empty input".into()))?;
    let n: usize = parse_counted(&header, "nodes")?;
    let mut builder = RoadNetworkBuilder::new();
    for i in 0..n {
        let line = next_line()?
            .ok_or_else(|| RoadNetError::Parse(format!("expected {n} node lines, got {i}")))?;
        let mut parts = line.split_whitespace();
        let id: u32 = parse_field(parts.next(), "node id")?;
        if id as usize != i {
            return Err(RoadNetError::Parse(format!(
                "node ids must be dense: expected {i}, got {id}"
            )));
        }
        let x: f32 = parse_field(parts.next(), "x coordinate")?;
        let y: f32 = parse_field(parts.next(), "y coordinate")?;
        let kw_field = parts
            .next()
            .ok_or_else(|| RoadNetError::Parse(format!("node {id}: missing keyword field")))?;
        if kw_field == "-" {
            builder.add_node(x, y, &[]);
        } else {
            let words: Vec<&str> = kw_field.split(',').filter(|s| !s.is_empty()).collect();
            builder.add_node(x, y, &words);
        }
    }
    let edge_header =
        next_line()?.ok_or_else(|| RoadNetError::Parse("missing edges header".into()))?;
    let m: usize = parse_counted(&edge_header, "edges")?;
    for i in 0..m {
        let line = next_line()?
            .ok_or_else(|| RoadNetError::Parse(format!("expected {m} edge lines, got {i}")))?;
        let mut parts = line.split_whitespace();
        let a: u32 = parse_field(parts.next(), "edge endpoint a")?;
        let b: u32 = parse_field(parts.next(), "edge endpoint b")?;
        let w: u32 = parse_field(parts.next(), "edge weight")?;
        builder.add_edge(NodeId(a), NodeId(b), w)?;
    }
    builder.build()
}

fn parse_counted(line: &str, expected_tag: &str) -> Result<usize, RoadNetError> {
    let mut parts = line.split_whitespace();
    let tag = parts.next().unwrap_or("");
    if tag != expected_tag {
        return Err(RoadNetError::Parse(format!(
            "expected '{expected_tag} <count>', got '{line}'"
        )));
    }
    parse_field(parts.next(), "count")
}

fn parse_field<T: std::str::FromStr>(field: Option<&str>, what: &str) -> Result<T, RoadNetError> {
    field
        .ok_or_else(|| RoadNetError::Parse(format!("missing {what}")))?
        .parse()
        .map_err(|_| RoadNetError::Parse(format!("invalid {what}")))
}

/// Encode to the binary format.
pub fn to_binary(net: &RoadNetwork) -> Bytes {
    let mut buf = BytesMut::new();
    encode_header(NETWORK_MAGIC, &mut buf);
    net.encode(&mut buf);
    buf.freeze()
}

/// Decode from the binary format.
pub fn from_binary(mut bytes: Bytes) -> Result<RoadNetwork, RoadNetError> {
    decode_header(&mut bytes, NETWORK_MAGIC).map_err(|e| RoadNetError::Parse(e.to_string()))?;
    RoadNetwork::decode(&mut bytes).map_err(|e| RoadNetError::Parse(e.to_string()))
}

/// Save the binary format to a file.
pub fn save_binary(net: &RoadNetwork, path: impl AsRef<Path>) -> Result<(), RoadNetError> {
    let bytes = to_binary(net);
    let mut f = BufWriter::new(std::fs::File::create(path)?);
    f.write_all(&bytes)?;
    Ok(())
}

/// Load the binary format from a file.
pub fn load_binary(path: impl AsRef<Path>) -> Result<RoadNetwork, RoadNetError> {
    let data = std::fs::read(path)?;
    from_binary(Bytes::from(data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::figure1_network;

    #[test]
    fn text_round_trip() {
        let (g, names) = figure1_network();
        let mut out = Vec::new();
        write_text(&g, &mut out).unwrap();
        let back = read_text(out.as_slice()).unwrap();
        assert_eq!(back.num_nodes(), g.num_nodes());
        assert_eq!(back.num_edges(), g.num_edges());
        assert_eq!(back.edge_weight(names["A"], names["B"]), Some(2));
        let school = back.vocab().get("school").unwrap();
        assert!(back.contains_keyword(names["A"], school));
        back.validate().unwrap();
    }

    #[test]
    fn binary_round_trip() {
        let g = crate::generator::GridNetworkConfig::tiny(4).generate();
        let bytes = to_binary(&g);
        let back = from_binary(bytes).unwrap();
        assert_eq!(back.num_nodes(), g.num_nodes());
        assert_eq!(back.num_edges(), g.num_edges());
        back.validate().unwrap();
    }

    #[test]
    fn text_rejects_garbage() {
        assert!(read_text("not a network".as_bytes()).is_err());
        assert!(read_text("".as_bytes()).is_err());
        assert!(read_text("nodes 1\n0 0 0 -\nedges 1\n0 0 5".as_bytes()).is_err()); // self-loop
        assert!(read_text("nodes 2\n0 0 0 -\n5 1 1 -\n".as_bytes()).is_err()); // non-dense ids
        assert!(read_text("nodes 1\n0 0 0 -\nedges 1\n".as_bytes()).is_err()); // missing edge line
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let g = crate::generator::GridNetworkConfig::tiny(4).generate();
        let mut raw = to_binary(&g).to_vec();
        raw[0] ^= 0xff;
        assert!(from_binary(Bytes::from(raw)).is_err());
    }

    #[test]
    fn binary_rejects_truncation() {
        let g = crate::generator::GridNetworkConfig::tiny(4).generate();
        let raw = to_binary(&g);
        let cut = raw.slice(0..raw.len() / 2);
        assert!(from_binary(cut).is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# header\n\nnodes 2\n0 0 0 cafe\n# middle comment\n1 1 1 -\nedges 1\n0 1 3\n";
        let net = read_text(text.as_bytes()).unwrap();
        assert_eq!(net.num_nodes(), 2);
        assert_eq!(net.num_edges(), 1);
    }
}
