//! Deterministic synthetic road-network generation.
//!
//! The paper evaluates on OpenStreetMap extracts of Britain (BRI) and
//! Australia (AUS) that are not shipped with the paper. This module is the
//! substitution documented in `DESIGN.md` §4: a perturbed-grid generator
//! whose outputs preserve the properties the NPD-index is sensitive to:
//!
//! * planar-like, low-degree topology (rectilinear grid with random edge
//!   removal),
//! * non-Euclidean shortest-path detours (circular "lakes" carved out of the
//!   grid — the paper's own motivating example for network distance),
//! * object nodes attached to their nearest junction by a short edge (the
//!   paper's stated preprocessing),
//! * Zipf-skewed, spatially clustered keyword frequencies (required by the
//!   paper's query generator).
//!
//! Generation is fully deterministic given the config (seeded `StdRng`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::graph::{NodeId, RoadNetwork, RoadNetworkBuilder};
use crate::vocab::KeywordId;
use crate::zipf::Zipf;

/// Configuration for the grid generator.
#[derive(Debug, Clone)]
pub struct GridNetworkConfig {
    /// Junction-grid width (columns).
    pub width: u32,
    /// Junction-grid height (rows).
    pub height: u32,
    /// Base edge weight between adjacent junctions (e.g. meters).
    pub base_weight: u32,
    /// Relative weight jitter in `[0, 1)`: weights are drawn from
    /// `base ± base·jitter`.
    pub weight_jitter: f64,
    /// Fraction of grid edges removed at random (creates detours).
    pub edge_removal: f64,
    /// Number of circular obstacles ("lakes") removed from the grid.
    pub lakes: usize,
    /// Lake radius as a fraction of `min(width, height)`.
    pub lake_radius_frac: f64,
    /// Probability that a junction spawns an attached object node.
    pub object_fraction: f64,
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Zipf exponent for global keyword popularity.
    pub zipf_exponent: f64,
    /// Keywords per object node, inclusive range.
    pub keywords_per_object: (usize, usize),
    /// Spatial keyword clustering: cells per side of the cluster grid.
    pub cluster_grid: u32,
    /// Keywords in each cell's local pool.
    pub cluster_pool: usize,
    /// Probability an object keyword is drawn from the local cell pool
    /// (vs the global Zipf distribution).
    pub cluster_affinity: f64,
    /// RNG seed; same config ⇒ same network.
    pub seed: u64,
}

impl Default for GridNetworkConfig {
    fn default() -> Self {
        GridNetworkConfig {
            width: 60,
            height: 60,
            base_weight: 1000,
            weight_jitter: 0.3,
            edge_removal: 0.12,
            lakes: 3,
            lake_radius_frac: 0.08,
            object_fraction: 0.08,
            vocab_size: 200,
            zipf_exponent: 1.0,
            keywords_per_object: (1, 3),
            cluster_grid: 6,
            cluster_pool: 24,
            cluster_affinity: 0.7,
            seed: 0xD15C5,
        }
    }
}

impl GridNetworkConfig {
    /// Small network for unit tests (~400 junctions).
    pub fn small(seed: u64) -> Self {
        GridNetworkConfig {
            width: 20,
            height: 20,
            vocab_size: 40,
            cluster_grid: 3,
            cluster_pool: 12,
            seed,
            ..Default::default()
        }
    }

    /// Tiny network for property tests (~100 junctions).
    pub fn tiny(seed: u64) -> Self {
        GridNetworkConfig {
            width: 10,
            height: 10,
            vocab_size: 12,
            lakes: 1,
            cluster_grid: 2,
            cluster_pool: 6,
            seed,
            ..Default::default()
        }
    }

    /// BRI-like preset: scaled-down analogue of the paper's Britain extract
    /// (3.76 M nodes, 8 % objects, 57.6 k keywords) — same object/keyword
    /// ratios at ~1/30 scale so the full experiment matrix runs locally.
    pub fn bri_like(seed: u64) -> Self {
        GridNetworkConfig {
            width: 340,
            height: 340,
            object_fraction: 0.08,
            vocab_size: 1800,
            lakes: 10,
            lake_radius_frac: 0.05,
            cluster_grid: 14,
            cluster_pool: 60,
            seed,
            ..Default::default()
        }
    }

    /// AUS-like preset: scaled-down analogue of the Australia extract
    /// (1.22 M nodes, 5.7 % objects, 18.75 k keywords).
    pub fn aus_like(seed: u64) -> Self {
        GridNetworkConfig {
            width: 200,
            height: 200,
            object_fraction: 0.057,
            vocab_size: 750,
            lakes: 6,
            lake_radius_frac: 0.07,
            cluster_grid: 10,
            cluster_pool: 40,
            seed,
            ..Default::default()
        }
    }

    /// Generate the network.
    pub fn generate(&self) -> RoadNetwork {
        generate_grid_network(self)
    }
}

/// Generate a road network per `cfg`. Always returns a connected network
/// with at least one object node (for degenerate configs the generator
/// forces one object so downstream query generation never divides by zero).
pub fn generate_grid_network(cfg: &GridNetworkConfig) -> RoadNetwork {
    assert!(cfg.width >= 2 && cfg.height >= 2, "grid must be at least 2x2");
    assert!(cfg.vocab_size > 0, "vocabulary must be non-empty");
    assert!(
        cfg.keywords_per_object.0 >= 1 && cfg.keywords_per_object.0 <= cfg.keywords_per_object.1,
        "keywords_per_object range must be non-empty and start at >= 1"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let (w, h) = (cfg.width as i64, cfg.height as i64);

    // 1. Carve lakes: junctions inside any lake are removed.
    let mut removed = vec![false; (w * h) as usize];
    let lake_radius = cfg.lake_radius_frac * w.min(h) as f64;
    for _ in 0..cfg.lakes {
        let cx = rng.gen_range(0.0..w as f64);
        let cy = rng.gen_range(0.0..h as f64);
        let r2 = lake_radius * lake_radius;
        let x_lo = ((cx - lake_radius).floor().max(0.0)) as i64;
        let x_hi = ((cx + lake_radius).ceil().min((w - 1) as f64)) as i64;
        let y_lo = ((cy - lake_radius).floor().max(0.0)) as i64;
        let y_hi = ((cy + lake_radius).ceil().min((h - 1) as f64)) as i64;
        for x in x_lo..=x_hi {
            for y in y_lo..=y_hi {
                let dx = x as f64 - cx;
                let dy = y as f64 - cy;
                if dx * dx + dy * dy <= r2 {
                    removed[(y * w + x) as usize] = true;
                }
            }
        }
    }

    // 2. Junction nodes.
    let mut builder = RoadNetworkBuilder::new();
    let vocab_ids: Vec<KeywordId> =
        (0..cfg.vocab_size).map(|i| builder.vocab_mut().intern(&format!("kw{i:05}"))).collect();
    let mut grid_to_node: Vec<Option<NodeId>> = vec![None; (w * h) as usize];
    for y in 0..h {
        for x in 0..w {
            let cell = (y * w + x) as usize;
            if removed[cell] {
                continue;
            }
            let jx = x as f32 + rng.gen_range(-0.2..0.2);
            let jy = y as f32 + rng.gen_range(-0.2..0.2);
            grid_to_node[cell] = Some(builder.add_node(jx, jy, &[]));
        }
    }

    // 3. Rectilinear edges with jittered weights and random removal.
    let jitter = cfg.weight_jitter.clamp(0.0, 0.95);
    let edge_weight = |rng: &mut StdRng| -> u32 {
        let f = 1.0 + rng.gen_range(-jitter..=jitter);
        ((cfg.base_weight as f64 * f).round() as u32).max(1)
    };
    for y in 0..h {
        for x in 0..w {
            let here = match grid_to_node[(y * w + x) as usize] {
                Some(n) => n,
                None => continue,
            };
            for (nx, ny) in [(x + 1, y), (x, y + 1)] {
                if nx >= w || ny >= h {
                    continue;
                }
                if let Some(there) = grid_to_node[(ny * w + nx) as usize] {
                    if rng.gen::<f64>() < cfg.edge_removal {
                        continue;
                    }
                    let wgt = edge_weight(&mut rng);
                    builder.add_edge(here, there, wgt).expect("grid edge must be valid");
                }
            }
        }
    }
    let junction_net = builder.build().expect("grid build");
    let (junction_net, _) = junction_net.largest_component();

    // 4. Spatial keyword cluster pools.
    let zipf = Zipf::new(cfg.vocab_size, cfg.zipf_exponent);
    let cells = (cfg.cluster_grid * cfg.cluster_grid) as usize;
    let mut cell_pools: Vec<Vec<usize>> = Vec::with_capacity(cells);
    for _ in 0..cells {
        let mut pool = Vec::with_capacity(cfg.cluster_pool);
        while pool.len() < cfg.cluster_pool.min(cfg.vocab_size) {
            let k = zipf.sample(&mut rng);
            if !pool.contains(&k) {
                pool.push(k);
            }
        }
        cell_pools.push(pool);
    }
    let cell_of = |x: f32, y: f32| -> usize {
        let cg = cfg.cluster_grid as f32;
        let cx = ((x / w as f32) * cg).clamp(0.0, cg - 1.0) as u32;
        let cy = ((y / h as f32) * cg).clamp(0.0, cg - 1.0) as u32;
        (cy * cfg.cluster_grid + cx) as usize
    };

    // 5. Rebuild with object nodes attached to junctions (the paper's
    //    preprocessing: each object connects to its nearest network node).
    let mut out = RoadNetworkBuilder::new();
    // Keep the same vocabulary ids.
    for id in &vocab_ids {
        let word = junction_net.vocab().word(*id).expect("vocab id").to_string();
        out.vocab_mut().intern(&word);
    }
    let mut junction_ids = Vec::with_capacity(junction_net.num_nodes());
    for j in junction_net.node_ids() {
        let (x, y) = junction_net.coord(j);
        junction_ids.push(out.add_node(x, y, &[]));
    }
    for (a, b, wgt) in junction_net.edges() {
        out.add_edge(junction_ids[a.index()], junction_ids[b.index()], wgt).expect("copied edge");
    }
    let object_edge_weight = (cfg.base_weight / 10).max(1);
    let mut num_objects = 0usize;
    for j in junction_net.node_ids() {
        if rng.gen::<f64>() >= cfg.object_fraction {
            continue;
        }
        let (x, y) = junction_net.coord(j);
        let pool = &cell_pools[cell_of(x, y)];
        let count = rng.gen_range(cfg.keywords_per_object.0..=cfg.keywords_per_object.1);
        let mut kws = Vec::with_capacity(count);
        for _ in 0..count {
            let rank = if !pool.is_empty() && rng.gen::<f64>() < cfg.cluster_affinity {
                pool[rng.gen_range(0..pool.len())]
            } else {
                zipf.sample(&mut rng)
            };
            kws.push(vocab_ids[rank]);
        }
        let obj =
            out.add_node_with_ids(x + rng.gen_range(-0.1..0.1), y + rng.gen_range(-0.1..0.1), kws);
        out.add_edge(junction_ids[j.index()], obj, object_edge_weight).expect("object edge");
        num_objects += 1;
    }
    if num_objects == 0 && !junction_ids.is_empty() {
        // Degenerate config guard: force one object so keyword queries exist.
        let j = junction_ids[0];
        let (x, y) = junction_net.coord(NodeId(0));
        let obj = out.add_node_with_ids(x, y, vec![vocab_ids[0]]);
        out.add_edge(j, obj, object_edge_weight).expect("forced object edge");
    }
    let net = out.build().expect("final build");
    debug_assert!(net.is_connected());
    net
}

/// Configuration for a small-world (Watts–Strogatz style) labelled graph.
///
/// The paper's conclusion proposes extending the NPD-index to "other types
/// of graphs such as relational database graphs and social networks"; the
/// index itself only needs a positive-weight labelled graph, so this
/// generator provides a non-road topology (high clustering + long-range
/// rewired links) to exercise that extension.
#[derive(Debug, Clone)]
pub struct SmallWorldConfig {
    /// Number of nodes on the ring.
    pub nodes: u32,
    /// Each node connects to `neighbors` nearest ring neighbors per side.
    pub neighbors: u32,
    /// Probability that a ring edge is rewired to a random target.
    pub rewire: f64,
    /// Edge weight range (inclusive).
    pub weight_range: (u32, u32),
    /// Vocabulary size ("interests"/"labels").
    pub vocab_size: usize,
    /// Probability a node carries at least one label.
    pub label_fraction: f64,
    /// Zipf exponent for label popularity.
    pub zipf_exponent: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SmallWorldConfig {
    fn default() -> Self {
        SmallWorldConfig {
            nodes: 400,
            neighbors: 2,
            rewire: 0.1,
            weight_range: (1, 10),
            vocab_size: 30,
            label_fraction: 0.5,
            zipf_exponent: 1.0,
            seed: 0x50C1A1,
        }
    }
}

impl SmallWorldConfig {
    /// Generate the labelled small-world graph (largest component, so it is
    /// always connected).
    pub fn generate(&self) -> RoadNetwork {
        assert!(self.nodes >= 4, "need at least 4 nodes");
        assert!(self.neighbors >= 1, "need at least 1 ring neighbor");
        assert!(self.weight_range.0 >= 1 && self.weight_range.0 <= self.weight_range.1);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut b = RoadNetworkBuilder::new();
        let vocab_ids: Vec<KeywordId> =
            (0..self.vocab_size).map(|i| b.vocab_mut().intern(&format!("label{i:04}"))).collect();
        let zipf = Zipf::new(self.vocab_size, self.zipf_exponent);
        let n = self.nodes;
        let mut nodes = Vec::with_capacity(n as usize);
        for i in 0..n {
            let angle = (i as f32) / (n as f32) * std::f32::consts::TAU;
            let kws = if rng.gen::<f64>() < self.label_fraction {
                let count = rng.gen_range(1..=2);
                (0..count).map(|_| vocab_ids[zipf.sample(&mut rng)]).collect()
            } else {
                Vec::new()
            };
            nodes.push(b.add_node_with_ids(angle.cos() * 100.0, angle.sin() * 100.0, kws));
        }
        let weight = |rng: &mut StdRng| rng.gen_range(self.weight_range.0..=self.weight_range.1);
        for i in 0..n {
            for j in 1..=self.neighbors {
                let mut target = (i + j) % n;
                if rng.gen::<f64>() < self.rewire {
                    // Rewire to a uniform random non-self target.
                    loop {
                        target = rng.gen_range(0..n);
                        if target != i {
                            break;
                        }
                    }
                }
                if target != i {
                    let w = weight(&mut rng);
                    b.add_edge(nodes[i as usize], nodes[target as usize], w)
                        .expect("small-world edge");
                }
            }
        }
        let net = b.build().expect("small-world build");
        let (net, _) = net.largest_component();
        net
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GridNetworkConfig::small(11);
        let a = cfg.generate();
        let b = cfg.generate();
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(a.num_edges(), b.num_edges());
        let ea: Vec<_> = a.edges().collect();
        let eb: Vec<_> = b.edges().collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn different_seeds_differ() {
        let a = GridNetworkConfig::small(1).generate();
        let b = GridNetworkConfig::small(2).generate();
        let ea: Vec<_> = a.edges().collect();
        let eb: Vec<_> = b.edges().collect();
        assert_ne!(ea, eb);
    }

    #[test]
    fn network_is_connected_and_valid() {
        let net = GridNetworkConfig::small(3).generate();
        assert!(net.is_connected());
        net.validate().unwrap();
    }

    #[test]
    fn objects_carry_keywords_junctions_do_not_dominate() {
        let net = GridNetworkConfig::small(5).generate();
        let objects = net.num_objects();
        assert!(objects > 0, "must generate object nodes");
        assert!(objects < net.num_nodes(), "junctions must remain");
        for n in net.node_ids() {
            if net.is_object(n) {
                let kws = net.keywords(n);
                assert!(!kws.is_empty() && kws.len() <= 3);
            }
        }
    }

    #[test]
    fn keyword_frequencies_are_skewed() {
        let net = GridNetworkConfig::small(9).generate();
        let freqs = net.keyword_frequencies();
        let max = *freqs.iter().max().unwrap();
        let nonzero = freqs.iter().filter(|&&f| f > 0).count();
        assert!(nonzero >= 10, "many keywords should be used");
        let avg = freqs.iter().sum::<usize>() as f64 / nonzero as f64;
        assert!(max as f64 > 2.0 * avg, "Zipf head should dominate: max={max} avg={avg}");
    }

    #[test]
    fn lakes_remove_junctions() {
        let mut with = GridNetworkConfig::small(13);
        with.lakes = 6;
        with.lake_radius_frac = 0.15;
        let mut without = with.clone();
        without.lakes = 0;
        let a = with.generate();
        let b = without.generate();
        assert!(a.num_nodes() < b.num_nodes(), "lakes must carve out nodes");
    }

    #[test]
    fn degenerate_object_fraction_still_yields_an_object() {
        let mut cfg = GridNetworkConfig::tiny(17);
        cfg.object_fraction = 0.0;
        let net = cfg.generate();
        assert!(net.num_objects() >= 1);
        assert!(net.is_connected());
    }

    #[test]
    fn presets_scale_sanely() {
        let aus = GridNetworkConfig::aus_like(1);
        let bri = GridNetworkConfig::bri_like(1);
        assert!(bri.width * bri.height > aus.width * aus.height);
        // Paper's object ratios: BRI 8%, AUS 5.7%.
        assert!((bri.object_fraction - 0.08).abs() < 1e-9);
        assert!((aus.object_fraction - 0.057).abs() < 1e-9);
    }

    #[test]
    fn small_world_is_connected_and_labelled() {
        let net = SmallWorldConfig::default().generate();
        assert!(net.is_connected());
        net.validate().unwrap();
        assert!(net.num_objects() > 0);
        // Average degree ≈ 2 * neighbors.
        let avg_degree = 2.0 * net.num_edges() as f64 / net.num_nodes() as f64;
        assert!(avg_degree > 3.0 && avg_degree < 5.0, "avg degree {avg_degree}");
    }

    #[test]
    fn small_world_rewiring_creates_shortcuts() {
        // With rewiring, the hop diameter should be far below the ring
        // diameter n / (2 * neighbors).
        let cfg = SmallWorldConfig { nodes: 300, rewire: 0.2, ..Default::default() };
        let net = cfg.generate();
        let mut ws = crate::DijkstraWorkspace::new(net.num_nodes());
        // Hop distance: treat every edge as weight-1 via a wrapper graph.
        struct Hops<'a>(&'a RoadNetwork);
        impl crate::Graph for Hops<'_> {
            fn num_nodes(&self) -> usize {
                self.0.num_nodes()
            }
            fn for_each_neighbor(&self, node: u32, f: &mut dyn FnMut(u32, u32)) {
                for (u, _) in self.0.neighbors(crate::NodeId(node)) {
                    f(u.0, 1);
                }
            }
        }
        let hops = Hops(&net);
        let far =
            ws.distances_from(&hops, 0, u64::MAX - 1).into_iter().map(|(_, d)| d).max().unwrap();
        let ring_diameter = net.num_nodes() as u64 / 4;
        assert!(far < ring_diameter, "eccentricity {far} vs ring {ring_diameter}");
    }

    #[test]
    fn small_world_determinism() {
        let a = SmallWorldConfig::default().generate();
        let b = SmallWorldConfig::default().generate();
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }

    #[test]
    fn avg_edge_weight_near_base() {
        let net = GridNetworkConfig::small(21).generate();
        let avg = net.avg_edge_weight();
        // Object edges (base/10) pull the average below base, but it stays
        // within the same order of magnitude.
        assert!(avg > 300 && avg < 1300, "avg weight {avg}");
    }
}
