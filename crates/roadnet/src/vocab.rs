//! Keyword vocabulary `K` (Definition 1): an interning table mapping keyword
//! strings to dense [`KeywordId`]s and back.

use std::collections::HashMap;

use bytes::{Buf, BufMut};

use crate::codec::{Decode, Encode};
use crate::error::DecodeError;

/// Dense identifier of a keyword in the vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KeywordId(pub u32);

impl KeywordId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for KeywordId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "kw#{}", self.0)
    }
}

impl Encode for KeywordId {
    fn encode(&self, buf: &mut impl BufMut) {
        self.0.encode(buf);
    }
}
impl Decode for KeywordId {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        Ok(KeywordId(u32::decode(buf)?))
    }
}

/// An interning keyword vocabulary.
///
/// Keyword strings are normalized to lowercase on insert and lookup so
/// `"Museum"` and `"museum"` are the same keyword, matching how the paper's
/// example queries are phrased.
#[derive(Debug, Clone, Default)]
pub struct Vocabulary {
    words: Vec<String>,
    by_word: HashMap<String, KeywordId>,
}

impl Vocabulary {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct keywords.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Intern `word`, returning its id (existing or freshly assigned).
    pub fn intern(&mut self, word: &str) -> KeywordId {
        let normalized = word.to_lowercase();
        if let Some(&id) = self.by_word.get(&normalized) {
            return id;
        }
        let id = KeywordId(u32::try_from(self.words.len()).expect("vocabulary exceeds u32::MAX"));
        self.by_word.insert(normalized.clone(), id);
        self.words.push(normalized);
        id
    }

    /// Look up an existing keyword without interning.
    pub fn get(&self, word: &str) -> Option<KeywordId> {
        self.by_word.get(&word.to_lowercase()).copied()
    }

    /// The string for `id`, if `id` is in range.
    pub fn word(&self, id: KeywordId) -> Option<&str> {
        self.words.get(id.index()).map(String::as_str)
    }

    /// Iterate `(id, word)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (KeywordId, &str)> {
        self.words.iter().enumerate().map(|(i, w)| (KeywordId(i as u32), w.as_str()))
    }
}

impl Encode for Vocabulary {
    fn encode(&self, buf: &mut impl BufMut) {
        self.words.encode(buf);
    }
}

impl Decode for Vocabulary {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        let words = Vec::<String>::decode(buf)?;
        let mut by_word = HashMap::with_capacity(words.len());
        for (i, w) in words.iter().enumerate() {
            by_word.insert(w.clone(), KeywordId(i as u32));
        }
        Ok(Vocabulary { words, by_word })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocabulary::new();
        let a = v.intern("museum");
        let b = v.intern("museum");
        assert_eq!(a, b);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn intern_normalizes_case() {
        let mut v = Vocabulary::new();
        let a = v.intern("Museum");
        assert_eq!(v.get("mUsEuM"), Some(a));
        assert_eq!(v.word(a), Some("museum"));
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut v = Vocabulary::new();
        let ids: Vec<_> = ["school", "park", "hospital"].iter().map(|w| v.intern(w)).collect();
        assert_eq!(ids, vec![KeywordId(0), KeywordId(1), KeywordId(2)]);
        let collected: Vec<_> = v.iter().map(|(id, w)| (id, w.to_string())).collect();
        assert_eq!(collected.len(), 3);
        assert_eq!(collected[1], (KeywordId(1), "park".to_string()));
    }

    #[test]
    fn unknown_lookup_is_none() {
        let v = Vocabulary::new();
        assert_eq!(v.get("nothing"), None);
        assert_eq!(v.word(KeywordId(5)), None);
    }

    #[test]
    fn codec_round_trip() {
        let mut v = Vocabulary::new();
        v.intern("supermarket");
        v.intern("gym");
        v.intern("hospital");
        let mut buf = BytesMut::new();
        v.encode(&mut buf);
        let mut bytes = buf.freeze();
        let back = Vocabulary::decode(&mut bytes).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back.get("gym"), Some(KeywordId(1)));
    }
}
