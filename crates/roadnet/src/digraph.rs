//! Directed road networks — the §2.1 adaptation ("Our method can be easily
//! adapted for the directed graph").
//!
//! A [`DirectedRoadNetwork`] stores arcs in both out-CSR and in-CSR form so
//! forward searches (query-time coverage) and backward searches (index
//! construction from in-portals over the reversed graph) are both cache
//! friendly. One-way streets are just arcs without a reverse twin;
//! `add_road` adds both directions with possibly different weights.

use std::collections::HashMap;

use crate::dijkstra::Graph;
use crate::error::RoadNetError;
use crate::graph::{NodeId, Weight};
use crate::vocab::{KeywordId, Vocabulary};

/// Builder for a [`DirectedRoadNetwork`].
#[derive(Debug, Default)]
pub struct DirectedRoadNetworkBuilder {
    coords: Vec<(f32, f32)>,
    node_keywords: Vec<Vec<KeywordId>>,
    arcs: Vec<(u32, u32, Weight)>,
    vocab: Vocabulary,
}

impl DirectedRoadNetworkBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn vocab_mut(&mut self) -> &mut Vocabulary {
        &mut self.vocab
    }

    /// Add a node at `(x, y)` with keywords (empty = junction).
    pub fn add_node(&mut self, x: f32, y: f32, keywords: &[&str]) -> NodeId {
        let mut kws: Vec<KeywordId> = keywords.iter().map(|w| self.vocab.intern(w)).collect();
        kws.sort_unstable();
        kws.dedup();
        let id = NodeId(u32::try_from(self.coords.len()).expect("node count exceeds u32"));
        self.coords.push((x, y));
        self.node_keywords.push(kws);
        id
    }

    /// Add a one-way arc `from → to`.
    pub fn add_arc(
        &mut self,
        from: NodeId,
        to: NodeId,
        weight: Weight,
    ) -> Result<(), RoadNetError> {
        if from == to {
            return Err(RoadNetError::SelfLoop(from.0));
        }
        if weight == 0 {
            return Err(RoadNetError::InvalidWeight { a: from.0, b: to.0, weight });
        }
        let n = self.coords.len() as u32;
        if from.0 >= n {
            return Err(RoadNetError::UnknownNode(from.0));
        }
        if to.0 >= n {
            return Err(RoadNetError::UnknownNode(to.0));
        }
        self.arcs.push((from.0, to.0, weight));
        Ok(())
    }

    /// Add a two-way road (both arcs, same weight).
    pub fn add_road(&mut self, a: NodeId, b: NodeId, weight: Weight) -> Result<(), RoadNetError> {
        self.add_arc(a, b, weight)?;
        self.add_arc(b, a, weight)
    }

    /// Finalize into CSR form. Duplicate arcs keep the minimum weight.
    pub fn build(mut self) -> Result<DirectedRoadNetwork, RoadNetError> {
        let n = self.coords.len();
        self.arcs.sort_unstable();
        self.arcs.dedup_by(|next, prev| {
            if next.0 == prev.0 && next.1 == prev.1 {
                prev.2 = prev.2.min(next.2);
                true
            } else {
                false
            }
        });
        let csr = |arcs: &[(u32, u32, Weight)],
                   key: fn(&(u32, u32, Weight)) -> u32,
                   other: fn(&(u32, u32, Weight)) -> u32| {
            let mut degree = vec![0u32; n];
            for a in arcs {
                degree[key(a) as usize] += 1;
            }
            let mut offsets = Vec::with_capacity(n + 1);
            offsets.push(0u32);
            let mut acc = 0u32;
            for &d in &degree {
                acc += d;
                offsets.push(acc);
            }
            let mut node = vec![0u32; arcs.len()];
            let mut weight = vec![0u32; arcs.len()];
            let mut cursor: Vec<u32> = offsets[..n].to_vec();
            for a in arcs {
                let c = cursor[key(a) as usize] as usize;
                node[c] = other(a);
                weight[c] = a.2;
                cursor[key(a) as usize] += 1;
            }
            (offsets, node, weight)
        };
        let (out_offsets, out_node, out_weight) = csr(&self.arcs, |a| a.0, |a| a.1);
        let (in_offsets, in_node, in_weight) = csr(&self.arcs, |a| a.1, |a| a.0);

        let mut kw_offsets = Vec::with_capacity(n + 1);
        kw_offsets.push(0u32);
        let mut kw_pool = Vec::new();
        for kws in &self.node_keywords {
            kw_pool.extend_from_slice(kws);
            kw_offsets.push(kw_pool.len() as u32);
        }
        let mut inv: HashMap<KeywordId, Vec<NodeId>> = HashMap::new();
        for (i, kws) in self.node_keywords.iter().enumerate() {
            for &k in kws {
                inv.entry(k).or_default().push(NodeId(i as u32));
            }
        }
        Ok(DirectedRoadNetwork {
            coords: self.coords,
            out_offsets,
            out_node,
            out_weight,
            in_offsets,
            in_node,
            in_weight,
            kw_offsets,
            kw_pool,
            inv,
            vocab: self.vocab,
            num_arcs: self.arcs.len(),
        })
    }
}

/// An immutable directed road network.
#[derive(Debug, Clone)]
pub struct DirectedRoadNetwork {
    coords: Vec<(f32, f32)>,
    out_offsets: Vec<u32>,
    out_node: Vec<u32>,
    out_weight: Vec<u32>,
    in_offsets: Vec<u32>,
    in_node: Vec<u32>,
    in_weight: Vec<u32>,
    kw_offsets: Vec<u32>,
    kw_pool: Vec<KeywordId>,
    inv: HashMap<KeywordId, Vec<NodeId>>,
    vocab: Vocabulary,
    num_arcs: usize,
}

impl DirectedRoadNetwork {
    pub fn num_nodes(&self) -> usize {
        self.coords.len()
    }

    pub fn num_arcs(&self) -> usize {
        self.num_arcs
    }

    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    pub fn coord(&self, n: NodeId) -> (f32, f32) {
        self.coords[n.index()]
    }

    /// Out-neighbors (forward arcs).
    pub fn out_neighbors(&self, n: NodeId) -> impl Iterator<Item = (NodeId, Weight)> + '_ {
        let lo = self.out_offsets[n.index()] as usize;
        let hi = self.out_offsets[n.index() + 1] as usize;
        self.out_node[lo..hi].iter().zip(&self.out_weight[lo..hi]).map(|(&u, &w)| (NodeId(u), w))
    }

    /// In-neighbors (sources of incoming arcs).
    pub fn in_neighbors(&self, n: NodeId) -> impl Iterator<Item = (NodeId, Weight)> + '_ {
        let lo = self.in_offsets[n.index()] as usize;
        let hi = self.in_offsets[n.index() + 1] as usize;
        self.in_node[lo..hi].iter().zip(&self.in_weight[lo..hi]).map(|(&u, &w)| (NodeId(u), w))
    }

    /// Weight of the arc `from → to`, if present.
    pub fn arc_weight(&self, from: NodeId, to: NodeId) -> Option<Weight> {
        self.out_neighbors(from).find(|&(n, _)| n == to).map(|(_, w)| w)
    }

    pub fn keywords(&self, n: NodeId) -> &[KeywordId] {
        let lo = self.kw_offsets[n.index()] as usize;
        let hi = self.kw_offsets[n.index() + 1] as usize;
        &self.kw_pool[lo..hi]
    }

    pub fn is_object(&self, n: NodeId) -> bool {
        !self.keywords(n).is_empty()
    }

    pub fn nodes_with_keyword(&self, kw: KeywordId) -> &[NodeId] {
        self.inv.get(&kw).map(Vec::as_slice).unwrap_or(&[])
    }

    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.coords.len() as u32).map(NodeId)
    }

    /// Iterate all arcs `(from, to, w)`.
    pub fn arcs(&self) -> impl Iterator<Item = (NodeId, NodeId, Weight)> + '_ {
        self.node_ids().flat_map(move |a| self.out_neighbors(a).map(move |(b, w)| (a, b, w)))
    }

    /// The forward graph view (arcs as stored).
    pub fn forward(&self) -> DirectedView<'_> {
        DirectedView { net: self, reversed: false }
    }

    /// The reversed graph view (every arc flipped) — used by the backward
    /// index-construction searches.
    pub fn reversed(&self) -> DirectedView<'_> {
        DirectedView { net: self, reversed: true }
    }
}

/// A [`Graph`] view of a directed network, forward or reversed.
#[derive(Clone, Copy)]
pub struct DirectedView<'a> {
    net: &'a DirectedRoadNetwork,
    reversed: bool,
}

impl Graph for DirectedView<'_> {
    fn num_nodes(&self) -> usize {
        self.net.num_nodes()
    }

    fn for_each_neighbor(&self, node: u32, f: &mut dyn FnMut(u32, Weight)) {
        let (offsets, nodes, weights) = if self.reversed {
            (&self.net.in_offsets, &self.net.in_node, &self.net.in_weight)
        } else {
            (&self.net.out_offsets, &self.net.out_node, &self.net.out_weight)
        };
        let lo = offsets[node as usize] as usize;
        let hi = offsets[node as usize + 1] as usize;
        for i in lo..hi {
            f(nodes[i], weights[i]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DijkstraWorkspace;

    /// A one-way triangle: a→b→c→a, weights 1/2/3, plus a two-way spur.
    fn triangle() -> (DirectedRoadNetwork, [NodeId; 4]) {
        let mut b = DirectedRoadNetworkBuilder::new();
        let a = b.add_node(0.0, 0.0, &["start"]);
        let bb = b.add_node(1.0, 0.0, &[]);
        let c = b.add_node(0.5, 1.0, &["goal"]);
        let d = b.add_node(2.0, 0.0, &[]);
        b.add_arc(a, bb, 1).unwrap();
        b.add_arc(bb, c, 2).unwrap();
        b.add_arc(c, a, 3).unwrap();
        b.add_road(bb, d, 5).unwrap();
        (b.build().unwrap(), [a, bb, c, d])
    }

    #[test]
    fn forward_and_reverse_views_are_consistent() {
        let (g, [a, bb, c, _]) = triangle();
        let mut ws = DijkstraWorkspace::new(g.num_nodes());
        // Forward: a→c = a→b→c = 3; reverse from c reaches a at 3 as well
        // (reverse distance c⇠a = forward a→c).
        assert_eq!(ws.distance(&g.forward(), a.0, c.0), 3);
        assert_eq!(ws.distance(&g.reversed(), c.0, a.0), 3);
        // Asymmetry: c→a = 3 directly, a⇠c reversed = 3; but c→b = c→a→b = 4
        // while b→c = 2.
        assert_eq!(ws.distance(&g.forward(), c.0, bb.0), 4);
        assert_eq!(ws.distance(&g.forward(), bb.0, c.0), 2);
    }

    #[test]
    fn one_way_arcs_are_not_symmetric() {
        let (g, [a, bb, _, d]) = triangle();
        assert_eq!(g.arc_weight(a, bb), Some(1));
        assert_eq!(g.arc_weight(bb, a), None);
        // The two-way spur is symmetric.
        assert_eq!(g.arc_weight(bb, d), Some(5));
        assert_eq!(g.arc_weight(d, bb), Some(5));
    }

    #[test]
    fn keyword_index_works() {
        let (g, [a, _, c, _]) = triangle();
        let start = g.vocab().get("start").unwrap();
        let goal = g.vocab().get("goal").unwrap();
        assert_eq!(g.nodes_with_keyword(start), &[a]);
        assert_eq!(g.nodes_with_keyword(goal), &[c]);
        assert!(g.is_object(a) && !g.is_object(NodeId(1)));
    }

    #[test]
    fn duplicate_arcs_keep_min_weight() {
        let mut b = DirectedRoadNetworkBuilder::new();
        let x = b.add_node(0.0, 0.0, &[]);
        let y = b.add_node(1.0, 0.0, &[]);
        b.add_arc(x, y, 9).unwrap();
        b.add_arc(x, y, 4).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.num_arcs(), 1);
        assert_eq!(g.arc_weight(x, y), Some(4));
    }

    #[test]
    fn invalid_arcs_rejected() {
        let mut b = DirectedRoadNetworkBuilder::new();
        let x = b.add_node(0.0, 0.0, &[]);
        assert!(b.add_arc(x, x, 1).is_err());
        assert!(b.add_arc(x, NodeId(9), 1).is_err());
        let y = b.add_node(1.0, 0.0, &[]);
        assert!(b.add_arc(x, y, 0).is_err());
    }
}
