//! Property tests for the road-network substrate: codec round-trips, graph
//! invariants, Dijkstra correctness against a Bellman–Ford oracle.

use proptest::prelude::*;

use disks_roadnet::codec::{Decode, Encode};
use disks_roadnet::{DijkstraWorkspace, NodeId, RoadNetwork, RoadNetworkBuilder, INF};

/// A random connected network from a spanning tree + extra edges.
fn arb_net() -> impl Strategy<Value = RoadNetwork> {
    (2usize..24)
        .prop_flat_map(|n| {
            let tree = proptest::collection::vec((any::<u32>(), 1u32..50), n - 1);
            let extra = proptest::collection::vec((any::<u32>(), any::<u32>(), 1u32..50), 0..n);
            let kw = proptest::collection::vec(0u8..4, n);
            (Just(n), tree, extra, kw)
        })
        .prop_map(|(n, tree, extra, kw)| {
            let mut b = RoadNetworkBuilder::new();
            let words = ["w0", "w1", "w2"];
            let mut nodes = Vec::new();
            for (i, &k) in kw.iter().enumerate() {
                let kws: Vec<&str> = if k == 0 { vec![] } else { vec![words[(k - 1) as usize]] };
                nodes.push(b.add_node(i as f32, 0.0, &kws));
            }
            for (i, &(pick, w)) in tree.iter().enumerate() {
                b.add_edge(nodes[i + 1], nodes[(pick as usize) % (i + 1)], w).unwrap();
            }
            for &(x, y, w) in &extra {
                let a = nodes[(x as usize) % n];
                let c = nodes[(y as usize) % n];
                if a != c {
                    b.add_edge(a, c, w).unwrap();
                }
            }
            b.build().unwrap()
        })
}

/// Reference Bellman–Ford (no heap, no epoch tricks).
fn bellman_ford(net: &RoadNetwork, src: u32) -> Vec<u64> {
    let n = net.num_nodes();
    let mut dist = vec![INF; n];
    dist[src as usize] = 0;
    for _ in 0..n {
        let mut changed = false;
        for (a, b, w) in net.edges() {
            let via_a = dist[a.index()].saturating_add(u64::from(w));
            if via_a < dist[b.index()] {
                dist[b.index()] = via_a;
                changed = true;
            }
            let via_b = dist[b.index()].saturating_add(u64::from(w));
            if via_b < dist[a.index()] {
                dist[a.index()] = via_b;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    dist
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn built_networks_validate(net in arb_net()) {
        net.validate().unwrap();
        prop_assert!(net.is_connected());
    }

    #[test]
    fn network_codec_round_trips(net in arb_net()) {
        use bytes::BytesMut;
        let mut buf = BytesMut::new();
        net.encode(&mut buf);
        let mut bytes = buf.freeze();
        let back = RoadNetwork::decode(&mut bytes).unwrap();
        prop_assert_eq!(back.num_nodes(), net.num_nodes());
        prop_assert_eq!(back.num_edges(), net.num_edges());
        let edges_a: Vec<_> = net.edges().collect();
        let edges_b: Vec<_> = back.edges().collect();
        prop_assert_eq!(edges_a, edges_b);
        for n in net.node_ids() {
            prop_assert_eq!(back.keywords(n), net.keywords(n));
        }
    }

    #[test]
    fn text_io_round_trips(net in arb_net()) {
        let mut out = Vec::new();
        disks_roadnet::io::write_text(&net, &mut out).unwrap();
        let back = disks_roadnet::io::read_text(out.as_slice()).unwrap();
        prop_assert_eq!(back.num_nodes(), net.num_nodes());
        prop_assert_eq!(back.num_edges(), net.num_edges());
        for n in net.node_ids() {
            prop_assert_eq!(back.keywords(n).len(), net.keywords(n).len());
        }
    }

    #[test]
    fn dijkstra_matches_bellman_ford(net in arb_net(), src_pick in any::<u32>()) {
        let src = src_pick % net.num_nodes() as u32;
        let reference = bellman_ford(&net, src);
        let mut ws = DijkstraWorkspace::new(net.num_nodes());
        let got = ws.distances_from(&net, src, INF - 1);
        let mut dist = vec![INF; net.num_nodes()];
        for (n, d) in got {
            dist[n as usize] = d;
        }
        prop_assert_eq!(dist, reference);
    }

    #[test]
    fn bounded_dijkstra_is_a_prefix_of_unbounded(net in arb_net(), src_pick in any::<u32>(), bound in 0u64..200) {
        let src = src_pick % net.num_nodes() as u32;
        let mut ws = DijkstraWorkspace::new(net.num_nodes());
        let all: std::collections::HashMap<u32, u64> =
            ws.distances_from(&net, src, INF - 1).into_iter().collect();
        let bounded: std::collections::HashMap<u32, u64> =
            ws.distances_from(&net, src, bound).into_iter().collect();
        for (n, d) in &bounded {
            prop_assert!(d <= &bound);
            prop_assert_eq!(all.get(n), Some(d));
        }
        for (n, d) in &all {
            if *d <= bound {
                prop_assert!(bounded.contains_key(n), "missing node {} at {}", n, d);
            }
        }
    }

    #[test]
    fn largest_component_of_connected_net_is_identity(net in arb_net()) {
        let (same, mapping) = net.largest_component();
        prop_assert_eq!(same.num_nodes(), net.num_nodes());
        prop_assert!(mapping.iter().all(Option::is_some));
    }

    #[test]
    fn inverted_index_agrees_with_membership(net in arb_net()) {
        for (kw, _) in net.vocab().iter() {
            let listed: std::collections::HashSet<NodeId> =
                net.nodes_with_keyword(kw).iter().copied().collect();
            for n in net.node_ids() {
                prop_assert_eq!(net.contains_keyword(n, kw), listed.contains(&n));
            }
        }
    }
}
