//! Bounded-search kernel microbench: Dial bucket queue vs packed-key binary
//! heap vs wide tuple heap on identical bounded multi-source searches.
//!
//! `DijkstraWorkspace::run` dispatches on the bound alone (`kernel_for`);
//! this bench uses the explicit `run_with` seam to pit all three kernels
//! against each other at production-like radii, where every kernel is valid
//! (bound < 2^16 so Dial applies). The ISSUE target is Dial ≥ 1.2× the
//! tuple-heap baseline on bounded coverage-style searches; the vendored
//! criterion stub prints median wall-clock per iteration so the ratio can be
//! read straight off the output.
//!
//! Run with: `cargo bench -p disks-roadnet --bench dijkstra_kernels`

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use disks_roadnet::dijkstra::{Control, DijkstraWorkspace, Kernel};
use disks_roadnet::generator::GridNetworkConfig;
use disks_roadnet::RoadNetwork;

/// Deterministic source set spread across the network: coverage searches in
/// the engine start from an object's junctions, so plain node ids are a fair
/// stand-in.
fn sources(net: &RoadNetwork, n: usize) -> Vec<(u32, u64)> {
    let total = net.num_nodes() as u32;
    (0..n).map(|i| ((i as u32).wrapping_mul(2_654_435_761) % total, 0u64)).collect()
}

fn bench_kernels(c: &mut Criterion) {
    let net = GridNetworkConfig::bri_like(0xBE7C).generate();
    let srcs = sources(&net, 16);
    let mut ws = DijkstraWorkspace::new(net.num_nodes());

    let mut group = c.benchmark_group("bounded_search");
    group.sample_size(20);
    // Production-like slot radii: a few tens of average edge lengths, all
    // comfortably under the Dial cutoff (2^16).
    for bound in [2_000u64, 8_000, 32_000] {
        for kernel in [Kernel::Dial, Kernel::PackedHeap, Kernel::WideHeap] {
            let label = match kernel {
                Kernel::Dial => "dial",
                Kernel::PackedHeap => "packed_heap",
                Kernel::WideHeap => "wide_heap",
            };
            group.bench_with_input(BenchmarkId::new(label, bound), &bound, |b, &bound| {
                b.iter(|| {
                    let mut settled = 0usize;
                    let stats = ws.run_with(kernel, &net, &srcs, bound, |node, dist| {
                        settled += 1;
                        black_box((node, dist));
                        Control::Continue
                    });
                    black_box((settled, stats.settled, stats.pushed))
                });
            });
        }
    }
    group.finish();
}

/// Unbounded-ish searches (bound ≥ 2^32): only the wide tuple heap applies;
/// benchmarked alone as the reference point the packed heap is replacing on
/// the 2^16..2^32 range.
fn bench_wide_reference(c: &mut Criterion) {
    let net = GridNetworkConfig::small(0xBE7C).generate();
    let srcs = sources(&net, 4);
    let mut ws = DijkstraWorkspace::new(net.num_nodes());

    let mut group = c.benchmark_group("unbounded_search");
    group.sample_size(10);
    for kernel in [Kernel::PackedHeap, Kernel::WideHeap] {
        let label = if kernel == Kernel::PackedHeap { "packed_heap" } else { "wide_heap" };
        // Largest bound both kernels accept: exercises full-network settles.
        let bound = (1u64 << 32) - 1;
        group.bench_with_input(BenchmarkId::new(label, "full"), &bound, |b, &bound| {
            b.iter(|| {
                let stats = ws.run_with(kernel, &net, &srcs, bound, |_, _| Control::Continue);
                black_box((stats.settled, stats.pushed))
            });
        });
    }
    group.finish();
}

criterion_group!(kernels, bench_kernels, bench_wide_reference);
criterion_main!(kernels);
