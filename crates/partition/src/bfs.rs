//! Multi-seed region-growing partitioner.
//!
//! Picks `k` seeds spread out by a farthest-point (k-center style) sweep of
//! BFS distances, then grows all regions simultaneously: at each step the
//! currently smallest fragment claims its next frontier node. This keeps
//! fragments balanced while following the graph topology (unlike the
//! geometric splitter, it never cuts across a bridge it could avoid).

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use disks_roadnet::{NodeId, RoadNetwork};

use crate::fragment::Partitioning;
use crate::Partitioner;

/// Region-growing partitioner with deterministic seeding.
#[derive(Debug, Clone, Copy)]
pub struct BfsPartitioner {
    /// RNG seed used to pick the first region seed.
    pub seed: u64,
}

impl Default for BfsPartitioner {
    fn default() -> Self {
        BfsPartitioner { seed: 0xBF5 }
    }
}

impl Partitioner for BfsPartitioner {
    fn partition(&self, net: &RoadNetwork, k: usize) -> Partitioning {
        assert!(k > 0, "k must be positive");
        let n = net.num_nodes();
        if n == 0 {
            return Partitioning::from_assignment(net, Vec::new(), k);
        }
        let seeds = pick_seeds(net, k, self.seed);
        let mut assignment = vec![u32::MAX; n];
        let mut frontiers: Vec<VecDeque<u32>> = vec![VecDeque::new(); k];
        let mut sizes = vec![0usize; k];
        for (f, &s) in seeds.iter().enumerate() {
            if assignment[s as usize] == u32::MAX {
                assignment[s as usize] = f as u32;
                sizes[f] += 1;
                frontiers[f].push_back(s);
            }
        }
        // Grow: smallest fragment with a non-empty frontier claims next.
        loop {
            let mut best: Option<usize> = None;
            for f in 0..k {
                if frontiers[f].is_empty() {
                    continue;
                }
                if best.is_none_or(|b| sizes[f] < sizes[b]) {
                    best = Some(f);
                }
            }
            let Some(f) = best else { break };
            let Some(u) = frontiers[f].pop_front() else { continue };
            for (v, _) in net.neighbors(NodeId(u)) {
                if assignment[v.index()] == u32::MAX {
                    assignment[v.index()] = f as u32;
                    sizes[f] += 1;
                    frontiers[f].push_back(v.0);
                }
            }
        }
        // Disconnected leftovers (other components): round-robin to the
        // smallest fragments to preserve balance.
        for a in assignment.iter_mut() {
            if *a == u32::MAX {
                let f = (0..k).min_by_key(|&f| sizes[f]).unwrap_or(0);
                *a = f as u32;
                sizes[f] += 1;
            }
        }
        Partitioning::from_assignment(net, assignment, k)
    }
}

/// Farthest-point seed selection: first seed random (seeded RNG), each
/// subsequent seed maximizes hop distance to all chosen seeds.
fn pick_seeds(net: &RoadNetwork, k: usize, seed: u64) -> Vec<u32> {
    let n = net.num_nodes();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seeds = vec![rng.gen_range(0..n) as u32];
    let mut dist = vec![u32::MAX; n];
    let mut queue = VecDeque::new();
    // Incremental multi-source BFS: after adding a seed, relax distances.
    let relax_from = |s: u32, dist: &mut Vec<u32>, queue: &mut VecDeque<u32>| {
        dist[s as usize] = 0;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            let du = dist[u as usize];
            for (v, _) in net.neighbors(NodeId(u)) {
                if dist[v.index()] > du + 1 {
                    dist[v.index()] = du + 1;
                    queue.push_back(v.0);
                }
            }
        }
    };
    relax_from(seeds[0], &mut dist, &mut queue);
    while seeds.len() < k.min(n) {
        let far = (0..n)
            .filter(|&i| dist[i] != u32::MAX) // stay in the same component
            .max_by_key(|&i| dist[i])
            .unwrap_or(0) as u32;
        if dist[far as usize] == 0 {
            // Everything is a seed already (tiny component); pick any
            // unused node.
            let unused = (0..n as u32).find(|u| !seeds.contains(u));
            match unused {
                Some(u) => {
                    seeds.push(u);
                    relax_from(u, &mut dist, &mut queue);
                }
                None => break,
            }
        } else {
            seeds.push(far);
            relax_from(far, &mut dist, &mut queue);
        }
    }
    seeds
}

#[cfg(test)]
mod tests {
    use super::*;
    use disks_roadnet::generator::GridNetworkConfig;

    #[test]
    fn produces_valid_balanced_partitions() {
        let net = GridNetworkConfig::small(7).generate();
        for k in [2, 4, 8, 16] {
            let p = BfsPartitioner::default().partition(&net, k);
            p.validate(&net).unwrap();
            assert_eq!(p.num_fragments(), k);
            assert!(p.balance() < 1.6, "k={k} balance={}", p.balance());
        }
    }

    #[test]
    fn regions_follow_topology() {
        let net = GridNetworkConfig::small(8).generate();
        let p = BfsPartitioner::default().partition(&net, 8);
        let cut_frac = p.cut_edges() as f64 / net.num_edges() as f64;
        assert!(cut_frac < 0.3, "cut fraction too high: {cut_frac}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let net = GridNetworkConfig::small(9).generate();
        let a = BfsPartitioner { seed: 5 }.partition(&net, 4);
        let b = BfsPartitioner { seed: 5 }.partition(&net, 4);
        assert_eq!(a.assignment(), b.assignment());
    }

    #[test]
    fn handles_k_larger_than_tiny_component_count() {
        let net = GridNetworkConfig::tiny(10).generate();
        let p = BfsPartitioner::default().partition(&net, 6);
        p.validate(&net).unwrap();
    }
}
