//! Multilevel (METIS-like) partitioner — the default, substituting for the
//! paper's ParMetis \[13\].
//!
//! Three classic phases:
//!
//! 1. **Coarsening** — repeated heavy-edge matching collapses matched node
//!    pairs; coarse edge weights accumulate the multiplicity of underlying
//!    fine edges, so the coarse cut equals the fine cut.
//! 2. **Initial partitioning** — weighted region growing on the coarsest
//!    graph (smallest-weight fragment claims its frontier first).
//! 3. **Uncoarsening + refinement** — the assignment is projected back level
//!    by level and improved by a boundary Fiduccia–Mattheyses pass: move a
//!    boundary node to the adjacent fragment with the highest cut gain,
//!    subject to a balance constraint.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use disks_roadnet::RoadNetwork;

use crate::fragment::Partitioning;
use crate::Partitioner;

/// Multilevel partitioner configuration.
#[derive(Debug, Clone, Copy)]
pub struct MultilevelPartitioner {
    /// Stop coarsening when the coarse graph has at most `coarsen_target * k`
    /// nodes (bounded below by 64).
    pub coarsen_target: usize,
    /// Allowed imbalance: fragment weight ≤ (1 + epsilon) · total / k.
    pub epsilon: f64,
    /// Refinement passes per level.
    pub refine_passes: usize,
    /// RNG seed (matching order, tie-breaks).
    pub seed: u64,
}

impl Default for MultilevelPartitioner {
    fn default() -> Self {
        MultilevelPartitioner { coarsen_target: 16, epsilon: 0.05, refine_passes: 4, seed: 0x317 }
    }
}

/// Adjacency-list weighted graph used internally during coarsening.
struct Level {
    /// Node weights (number of underlying fine nodes).
    node_weight: Vec<u64>,
    /// Weighted adjacency: (neighbor, multiplicity).
    adj: Vec<Vec<(u32, u64)>>,
    /// Mapping from the *finer* level's nodes to this level's nodes.
    fine_to_coarse: Vec<u32>,
}

impl Level {
    fn num_nodes(&self) -> usize {
        self.node_weight.len()
    }
}

impl Partitioner for MultilevelPartitioner {
    fn partition(&self, net: &RoadNetwork, k: usize) -> Partitioning {
        assert!(k > 0, "k must be positive");
        let n = net.num_nodes();
        if n == 0 {
            return Partitioning::from_assignment(net, Vec::new(), k);
        }
        if k == 1 {
            return Partitioning::single_fragment(net);
        }
        let mut rng = StdRng::seed_from_u64(self.seed);

        // Level 0: the input graph with unit node weights.
        let mut adj: Vec<Vec<(u32, u64)>> = vec![Vec::new(); n];
        for (a, b, _) in net.edges() {
            adj[a.index()].push((b.0, 1));
            adj[b.index()].push((a.0, 1));
        }
        let base = Level { node_weight: vec![1; n], adj, fine_to_coarse: Vec::new() };

        // 1. Coarsen.
        let target = (self.coarsen_target * k).max(64);
        let mut levels = vec![base];
        loop {
            let top = levels.last().expect("at least one level");
            if top.num_nodes() <= target {
                break;
            }
            let coarse = coarsen(top, &mut rng);
            let shrunk = coarse.num_nodes() < top.num_nodes() * 95 / 100;
            levels.push(coarse);
            if !shrunk {
                break; // matching stalled (e.g. star graphs); avoid looping
            }
        }

        // 2. Initial partition on the coarsest level.
        let coarsest = levels.last().expect("levels non-empty");
        let mut assignment = initial_partition(coarsest, k, &mut rng);
        let max_weight = balance_cap(coarsest.node_weight.iter().sum(), k, self.epsilon);
        refine(coarsest, &mut assignment, k, max_weight, self.refine_passes, &mut rng);

        // 3. Project back + refine each level.
        for li in (0..levels.len() - 1).rev() {
            let finer = &levels[li];
            let mapping = &levels[li + 1].fine_to_coarse;
            let mut fine_assignment = vec![0u32; finer.num_nodes()];
            for (i, a) in fine_assignment.iter_mut().enumerate() {
                *a = assignment[mapping[i] as usize];
            }
            assignment = fine_assignment;
            let max_weight = balance_cap(finer.node_weight.iter().sum(), k, self.epsilon);
            refine(finer, &mut assignment, k, max_weight, self.refine_passes, &mut rng);
        }

        // Guarantee no empty fragments when n >= k: steal one boundary-ish
        // node for each empty fragment from the largest fragment.
        fill_empty_fragments(&mut assignment, k);

        Partitioning::from_assignment(net, assignment, k)
    }
}

impl MultilevelPartitioner {
    /// Workload-aware post-pass (DESIGN.md §6i): refine an existing
    /// partitioning against a query-log profile, minimizing the
    /// query-weighted edge cut under this partitioner's balance settings.
    /// The profile's node heat is diffused [`HEAT_DIFFUSION_HOPS`] rounds
    /// first — object nodes hang off the interior of the road graph while
    /// cut edges run between road nodes, and a query's Dijkstra work
    /// spreads over its objects' neighborhoods, so undiffused heat rarely
    /// touches a cut edge at all. Returns the input assignment untouched
    /// when the profile is empty.
    ///
    /// [`HEAT_DIFFUSION_HOPS`]: crate::layout::HEAT_DIFFUSION_HOPS
    pub fn refine_with_profile(
        &self,
        net: &RoadNetwork,
        p: &Partitioning,
        profile: &crate::layout::LayoutProfile,
    ) -> Partitioning {
        let heat = profile.node_heat_diffused(net, crate::layout::HEAT_DIFFUSION_HOPS);
        crate::layout::refine_weighted(net, p, &heat, self.epsilon, self.refine_passes)
    }
}

pub(crate) fn balance_cap(total_weight: u64, k: usize, epsilon: f64) -> u64 {
    let ideal = total_weight as f64 / k as f64;
    (ideal * (1.0 + epsilon)).ceil() as u64 + 1
}

/// Heavy-edge matching: visit nodes in random order, match each unmatched
/// node with its unmatched neighbor of maximum edge weight.
fn coarsen(level: &Level, rng: &mut StdRng) -> Level {
    let n = level.num_nodes();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(rng);
    let mut matched = vec![u32::MAX; n];
    let mut coarse_count = 0u32;
    let mut fine_to_coarse = vec![u32::MAX; n];
    for &u in &order {
        if fine_to_coarse[u as usize] != u32::MAX {
            continue;
        }
        let mut best: Option<(u32, u64)> = None;
        for &(v, w) in &level.adj[u as usize] {
            if fine_to_coarse[v as usize] == u32::MAX && v != u && best.is_none_or(|(_, bw)| w > bw)
            {
                best = Some((v, w));
            }
        }
        let c = coarse_count;
        coarse_count += 1;
        fine_to_coarse[u as usize] = c;
        if let Some((v, _)) = best {
            fine_to_coarse[v as usize] = c;
            matched[u as usize] = v;
        }
    }
    let _ = matched;
    let cn = coarse_count as usize;
    let mut node_weight = vec![0u64; cn];
    for i in 0..n {
        node_weight[fine_to_coarse[i] as usize] += level.node_weight[i];
    }
    // Accumulate coarse edges via a hash map per node.
    let mut adj: Vec<Vec<(u32, u64)>> = vec![Vec::new(); cn];
    {
        use std::collections::HashMap;
        let mut acc: Vec<HashMap<u32, u64>> = vec![HashMap::new(); cn];
        for u in 0..n {
            let cu = fine_to_coarse[u];
            for &(v, w) in &level.adj[u] {
                let cv = fine_to_coarse[v as usize];
                if cu != cv {
                    *acc[cu as usize].entry(cv).or_insert(0) += w;
                }
            }
        }
        for (cu, map) in acc.into_iter().enumerate() {
            let mut list: Vec<(u32, u64)> = map.into_iter().collect();
            list.sort_unstable();
            // Each undirected fine edge was visited from both endpoints, so
            // halve the accumulated multiplicity.
            for e in &mut list {
                e.1 /= 2;
            }
            adj[cu] = list;
        }
    }
    Level { node_weight, adj, fine_to_coarse }
}

/// Weighted region growing for the initial coarse partition.
fn initial_partition(level: &Level, k: usize, rng: &mut StdRng) -> Vec<u32> {
    let n = level.num_nodes();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(rng);
    let mut assignment = vec![u32::MAX; n];
    let mut weights = vec![0u64; k];
    let mut frontiers: Vec<Vec<u32>> = vec![Vec::new(); k];
    // Seed fragments with the first k distinct nodes of the random order.
    for (f, &s) in order.iter().take(k).enumerate() {
        assignment[s as usize] = f as u32;
        weights[f] += level.node_weight[s as usize];
        frontiers[f].push(s);
    }
    loop {
        // Smallest-weight fragment with a frontier grows next.
        let mut best: Option<usize> = None;
        for f in 0..k {
            if frontiers[f].is_empty() {
                continue;
            }
            if best.is_none_or(|b| weights[f] < weights[b]) {
                best = Some(f);
            }
        }
        let Some(f) = best else { break };
        let u = frontiers[f].pop().expect("frontier non-empty");
        for &(v, _) in &level.adj[u as usize] {
            if assignment[v as usize] == u32::MAX {
                assignment[v as usize] = f as u32;
                weights[f] += level.node_weight[v as usize];
                frontiers[f].push(v);
            }
        }
    }
    // Unreached nodes (other components): assign to lightest fragment.
    for (u, a) in assignment.iter_mut().enumerate() {
        if *a == u32::MAX {
            let f = (0..k).min_by_key(|&f| weights[f]).unwrap_or(0);
            *a = f as u32;
            weights[f] += level.node_weight[u];
        }
    }
    assignment
}

/// Boundary FM refinement: greedy positive-gain moves under a balance cap.
fn refine(
    level: &Level,
    assignment: &mut [u32],
    k: usize,
    max_weight: u64,
    passes: usize,
    rng: &mut StdRng,
) {
    let n = level.num_nodes();
    let mut weights = vec![0u64; k];
    for u in 0..n {
        weights[assignment[u] as usize] += level.node_weight[u];
    }
    let mut order: Vec<u32> = (0..n as u32).collect();
    for _ in 0..passes {
        order.shuffle(rng);
        let mut moved = 0usize;
        for &u in &order {
            let from = assignment[u as usize] as usize;
            // Connectivity to each adjacent fragment.
            let mut internal = 0u64;
            let mut best: Option<(usize, u64)> = None;
            // Small linear scan; node degrees are tiny in road networks.
            for &(v, w) in &level.adj[u as usize] {
                let fv = assignment[v as usize] as usize;
                if fv == from {
                    internal += w;
                }
            }
            for &(v, w) in &level.adj[u as usize] {
                let fv = assignment[v as usize] as usize;
                if fv == from {
                    continue;
                }
                let mut external = 0u64;
                for &(v2, w2) in &level.adj[u as usize] {
                    if assignment[v2 as usize] as usize == fv {
                        external += w2;
                    }
                }
                let _ = (v, w);
                if external > internal && best.is_none_or(|(_, g)| external - internal > g) {
                    best = Some((fv, external - internal));
                }
            }
            if let Some((to, _gain)) = best {
                let uw = level.node_weight[u as usize];
                if weights[to] + uw <= max_weight && weights[from] > uw {
                    weights[from] -= uw;
                    weights[to] += uw;
                    assignment[u as usize] = to as u32;
                    moved += 1;
                }
            }
        }
        if moved == 0 {
            break;
        }
    }
    rebalance(level, assignment, k, max_weight, &mut weights);
}

/// Diffusion rebalance: while some fragment exceeds the balance cap, move a
/// boundary node of the heaviest fragment into a *strictly lighter* adjacent
/// fragment (lighter even after receiving the node). Weight then flows
/// through intermediate fragments toward the light ones even when they are
/// not directly adjacent to the heavy one. Termination: each move strictly
/// decreases Σ weightᵢ², so no cycling is possible. Among legal moves the
/// one with the best cut gain is chosen.
fn rebalance(
    level: &Level,
    assignment: &mut [u32],
    k: usize,
    max_weight: u64,
    weights: &mut [u64],
) {
    let n = level.num_nodes();
    for _ in 0..16 * n {
        if !(0..k).any(|f| weights[f] > max_weight) {
            break;
        }
        // Best legal move from *any* over-cap fragment: (heaviest source,
        // then best cut gain). Considering all over-cap sources matters —
        // the single heaviest fragment can be landlocked by other heavy
        // fragments while a lighter-but-still-over one can move.
        let mut best: Option<(u32, usize, u64, i64)> = None; // (node, to, src_w, gain)
        for u in 0..n as u32 {
            let from = assignment[u as usize] as usize;
            let from_weight = weights[from];
            if from_weight <= max_weight {
                continue;
            }
            let uw = level.node_weight[u as usize];
            let mut internal = 0i64;
            for &(v, w) in &level.adj[u as usize] {
                if assignment[v as usize] as usize == from {
                    internal += w as i64;
                }
            }
            for &(v, _) in &level.adj[u as usize] {
                let fv = assignment[v as usize] as usize;
                // Σw² strictly decreases iff target-after < source-before,
                // which guarantees termination without cycling.
                if fv == from || weights[fv] + uw >= from_weight {
                    continue;
                }
                let mut external = 0i64;
                for &(v2, w2) in &level.adj[u as usize] {
                    if assignment[v2 as usize] as usize == fv {
                        external += w2 as i64;
                    }
                }
                let gain = external - internal;
                let better = match best {
                    None => true,
                    Some((_, _, bw, bg)) => from_weight > bw || (from_weight == bw && gain > bg),
                };
                if better {
                    best = Some((u, fv, from_weight, gain));
                }
            }
        }
        let Some((u, to, _, _)) = best else { break };
        let from = assignment[u as usize] as usize;
        let uw = level.node_weight[u as usize];
        weights[from] -= uw;
        weights[to] += uw;
        assignment[u as usize] = to as u32;
    }
}

/// Ensure every fragment id `< k` appears at least once (if `n >= k`) by
/// reassigning nodes from the largest fragments.
fn fill_empty_fragments(assignment: &mut [u32], k: usize) {
    let n = assignment.len();
    if n < k {
        return;
    }
    let mut counts = vec![0usize; k];
    for &a in assignment.iter() {
        counts[a as usize] += 1;
    }
    for f in 0..k {
        if counts[f] > 0 {
            continue;
        }
        // Take one node from the largest fragment with >1 nodes.
        let donor = (0..k).filter(|&d| counts[d] > 1).max_by_key(|&d| counts[d]);
        if let Some(d) = donor {
            if let Some(pos) = assignment.iter().position(|&a| a as usize == d) {
                assignment[pos] = f as u32;
                counts[d] -= 1;
                counts[f] += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GridPartitioner;
    use disks_roadnet::generator::GridNetworkConfig;

    #[test]
    fn produces_valid_partitions_for_paper_k_values() {
        let net = GridNetworkConfig::small(1).generate();
        for k in [2, 4, 8, 12, 16] {
            let p = MultilevelPartitioner::default().partition(&net, k);
            p.validate(&net).unwrap();
            assert_eq!(p.num_fragments(), k);
            assert!(
                p.fragment_ids().all(|f| !p.nodes(f).is_empty()),
                "k={k}: no fragment may be empty"
            );
        }
    }

    #[test]
    fn balance_respects_epsilon_roughly() {
        let net = GridNetworkConfig::small(2).generate();
        let p = MultilevelPartitioner::default().partition(&net, 8);
        assert!(p.balance() < 1.35, "balance={}", p.balance());
    }

    #[test]
    fn cut_is_competitive_with_geometric() {
        let net = GridNetworkConfig::small(3).generate();
        let ml = MultilevelPartitioner::default().partition(&net, 8);
        let geo = GridPartitioner.partition(&net, 8);
        // The multilevel partitioner should be in the same league as the
        // geometric one on a grid (within 2x), usually better.
        assert!(
            ml.cut_edges() <= geo.cut_edges() * 2,
            "multilevel cut {} vs geometric {}",
            ml.cut_edges(),
            geo.cut_edges()
        );
    }

    #[test]
    fn k_equals_one_is_single_fragment() {
        let net = GridNetworkConfig::tiny(4).generate();
        let p = MultilevelPartitioner::default().partition(&net, 1);
        assert_eq!(p.num_fragments(), 1);
        assert_eq!(p.cut_edges(), 0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let net = GridNetworkConfig::small(5).generate();
        let a = MultilevelPartitioner::default().partition(&net, 4);
        let b = MultilevelPartitioner::default().partition(&net, 4);
        assert_eq!(a.assignment(), b.assignment());
    }

    #[test]
    fn coarsening_preserves_total_node_weight() {
        let net = GridNetworkConfig::small(6).generate();
        let n = net.num_nodes();
        let mut adj: Vec<Vec<(u32, u64)>> = vec![Vec::new(); n];
        for (a, b, _) in net.edges() {
            adj[a.index()].push((b.0, 1));
            adj[b.index()].push((a.0, 1));
        }
        let level = Level { node_weight: vec![1; n], adj, fine_to_coarse: Vec::new() };
        let mut rng = StdRng::seed_from_u64(1);
        let coarse = coarsen(&level, &mut rng);
        assert!(coarse.num_nodes() < n);
        assert_eq!(coarse.node_weight.iter().sum::<u64>(), n as u64);
        // Coarse edges are symmetric.
        for u in 0..coarse.num_nodes() {
            for &(v, w) in &coarse.adj[u] {
                let back = coarse.adj[v as usize]
                    .iter()
                    .find(|&&(x, _)| x as usize == u)
                    .map(|&(_, w2)| w2);
                assert_eq!(back, Some(w), "asymmetric coarse edge {u}-{v}");
            }
        }
    }
}
