//! Graph-partitioning substrate for the DISKS system.
//!
//! The paper fragments each road network into `N` node-disjoint fragments
//! with ParMetis \[13\], "aiming at minimizing cross-partition edges for
//! parallel computing" with balanced fragment sizes. This crate is the
//! from-scratch substitution (DESIGN.md §4):
//!
//! * [`GridPartitioner`] — geometric kd-splitting on node coordinates;
//!   trivially balanced, a good road-network baseline.
//! * [`BfsPartitioner`] — multi-seed region growing over the graph topology.
//! * [`MultilevelPartitioner`] — the METIS-like default: heavy-edge-matching
//!   coarsening, region-grow initial partitioning, and boundary
//!   Fiduccia–Mattheyses refinement during uncoarsening.
//!
//! All partitioners emit a [`Partitioning`], which also computes the
//! *portal nodes* (endpoints of cross-fragment edges — §3.2 of the paper),
//! the edge cut, and balance statistics consumed by the load-balance
//! analysis (Theorem 6).

pub mod bfs;
pub mod fragment;
pub mod grid;
pub mod layout;
pub mod metrics;
pub mod multilevel;

pub use bfs::BfsPartitioner;
pub use fragment::{FragmentId, Partitioning};
pub use grid::GridPartitioner;
pub use layout::{refine_weighted, weighted_cut, LayoutProfile, HEAT_DIFFUSION_HOPS};
pub use metrics::PartitionMetrics;
pub use multilevel::MultilevelPartitioner;

use disks_roadnet::RoadNetwork;

/// A strategy producing a `k`-way node-disjoint partitioning.
pub trait Partitioner {
    /// Partition `net` into `k` fragments. Implementations must return a
    /// partitioning with exactly `k` fragments (some may be empty only for
    /// degenerate inputs with fewer than `k` nodes).
    fn partition(&self, net: &RoadNetwork, k: usize) -> Partitioning;
}
