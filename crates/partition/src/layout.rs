//! Workload-aware layout (DESIGN.md §6i): the query-log profile and the
//! query-weighted refinement pass.
//!
//! Every layout decision upstream of this module — partition boundaries,
//! the §5.5 bi-level radius split, replica placement, cache admission — is
//! blind to the workload: it sees the graph and the objects, never the
//! queries. Theorem 6 says distributed query time is governed by the most
//! loaded machine, and load is a property of the *query stream*, not the
//! data. A [`LayoutProfile`] captures the stream's observable shape
//! (keyword ranks, query radii, query locations) so each layer can trade
//! its data-only heuristic for a workload-weighted one:
//!
//! * [`weighted_cut`] — the edge cut where an edge incident to hot nodes
//!   (nodes whose keywords are queried often) costs `1 + heat(u) +
//!   heat(v)` instead of 1. With zero heat everywhere this *is* the plain
//!   cut-edge count, so the metric degenerates cleanly.
//! * [`refine_weighted`] — a boundary Fiduccia–Mattheyses pass over an
//!   existing partitioning that greedily moves nodes to strictly decrease
//!   the weighted cut under the same node-count balance cap the blind
//!   partitioner used. Every applied move strictly improves, so the pass
//!   **never increases** the weighted cut (the proptests pin this).
//!
//! The profile is deliberately partition-independent — it records node and
//! keyword identities, so one profile can evaluate or refine any candidate
//! partitioning of the same network.

use std::collections::HashMap;

use disks_roadnet::{KeywordId, NodeId, RoadNetwork};

use crate::fragment::Partitioning;
use crate::multilevel::balance_cap;

/// Diffusion rounds [`MultilevelPartitioner::refine_with_profile`] applies
/// to the profile's node heat before refining — evaluate a refined
/// partitioning with [`weighted_cut`] under
/// [`LayoutProfile::node_heat_diffused`] at the same hop count.
///
/// [`MultilevelPartitioner::refine_with_profile`]: crate::MultilevelPartitioner::refine_with_profile
pub const HEAT_DIFFUSION_HOPS: usize = 3;

/// Aggregated shape of an observed query stream: how often each keyword is
/// queried, the radius distribution, and (when known) where queries
/// originate. All counts are weights — replaying a log adds its
/// multiplicities, merging two profiles is addition.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LayoutProfile {
    keyword_heat: HashMap<u32, u64>,
    radii: HashMap<u64, u64>,
    location_heat: HashMap<u32, u64>,
}

impl LayoutProfile {
    pub fn new() -> Self {
        Self::default()
    }

    /// True when the profile has recorded nothing — consumers fall back to
    /// their blind defaults.
    pub fn is_empty(&self) -> bool {
        self.keyword_heat.is_empty() && self.radii.is_empty() && self.location_heat.is_empty()
    }

    /// Record `weight` additional queries of keyword `kw`.
    pub fn record_keyword(&mut self, kw: KeywordId, weight: u64) {
        if weight > 0 {
            let c = self.keyword_heat.entry(kw.0).or_insert(0);
            *c = c.saturating_add(weight);
        }
    }

    /// Record `weight` additional queries of radius `r`.
    pub fn record_radius(&mut self, r: u64, weight: u64) {
        if weight > 0 {
            let c = self.radii.entry(r).or_insert(0);
            *c = c.saturating_add(weight);
        }
    }

    /// Record `weight` additional queries anchored at node `n` (e.g. §6
    /// kNN-style queries with a location; pure SGKQ streams have none).
    pub fn record_location(&mut self, n: NodeId, weight: u64) {
        if weight > 0 {
            let c = self.location_heat.entry(n.0).or_insert(0);
            *c = c.saturating_add(weight);
        }
    }

    /// Record one query: each keyword once, the radius once.
    pub fn record_query(&mut self, keywords: &[KeywordId], radius: u64) {
        for &kw in keywords {
            self.record_keyword(kw, 1);
        }
        self.record_radius(radius, 1);
    }

    /// Total recorded query weight (by radius observations).
    pub fn total_queries(&self) -> u64 {
        self.radii.values().sum()
    }

    /// Keyword heat as `(keyword, weight)`, hottest first (ties toward the
    /// smaller keyword id) — the profile's notion of keyword rank.
    pub fn keyword_ranks(&self) -> Vec<(u32, u64)> {
        let mut v: Vec<(u32, u64)> = self.keyword_heat.iter().map(|(&k, &c)| (k, c)).collect();
        v.sort_by_key(|&(k, c)| (std::cmp::Reverse(c), k));
        v
    }

    /// The observed radius distribution as `(radius, weight)`, ascending.
    pub fn radius_distribution(&self) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self.radii.iter().map(|(&r, &c)| (r, c)).collect();
        v.sort_unstable();
        v
    }

    /// The smallest observed radius `r` such that at least `q` of the
    /// recorded query weight used radius `≤ r`, or `None` when the profile
    /// saw no radii. `q` is clamped to `[0, 1]`; the answer is always an
    /// observed radius, so `q = 1.0` returns the maximum.
    pub fn radius_quantile(&self, q: f64) -> Option<u64> {
        let dist = self.radius_distribution();
        let total: u64 = dist.iter().map(|&(_, c)| c).sum();
        if total == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for &(r, c) in &dist {
            cum += c;
            if cum >= target {
                return Some(r);
            }
        }
        dist.last().map(|&(r, _)| r)
    }

    /// Project the profile onto nodes of `net`: every object node carrying
    /// a queried keyword receives that keyword's full weight (each query
    /// runs a coverage Dijkstra from *every* object of its keyword, so a
    /// node's heat is the query traffic of the keywords it carries), plus
    /// any direct location weight.
    pub fn node_heat(&self, net: &RoadNetwork) -> Vec<u64> {
        let mut heat = vec![0u64; net.num_nodes()];
        for (&kw, &c) in &self.keyword_heat {
            for &n in net.nodes_with_keyword(KeywordId(kw)) {
                heat[n.index()] += c;
            }
        }
        for (&n, &c) in &self.location_heat {
            if (n as usize) < heat.len() {
                heat[n as usize] += c;
            }
        }
        heat
    }

    /// [`node_heat`] diffused `hops` rounds over the graph: each round,
    /// every node absorbs half its hottest neighbor's heat (keeping its
    /// own when larger), so heat decays geometrically with hop distance
    /// from the objects. Object nodes typically hang off the road graph's
    /// interior while the partitioner cuts between road nodes — a query's
    /// coverage Dijkstra spends its work *around* its objects, and this is
    /// what gives the cut edges inside those neighborhoods their weight
    /// (use [`HEAT_DIFFUSION_HOPS`] to match the refinement pass).
    ///
    /// [`node_heat`]: LayoutProfile::node_heat
    pub fn node_heat_diffused(&self, net: &RoadNetwork, hops: usize) -> Vec<u64> {
        let mut heat = self.node_heat(net);
        for _ in 0..hops {
            let prev = heat.clone();
            for u in 0..net.num_nodes() {
                let from_neighbors = net
                    .neighbors(NodeId(u as u32))
                    .map(|(v, _)| prev[v.index()] / 2)
                    .max()
                    .unwrap_or(0);
                heat[u] = prev[u].max(from_neighbors);
            }
        }
        heat
    }

    /// Node heat summed per fragment of `p` — the placement layer's seed
    /// (`Placement::replicated` heat, router load shares).
    pub fn fragment_heat(&self, net: &RoadNetwork, p: &Partitioning) -> Vec<u64> {
        let heat = self.node_heat(net);
        let mut per = vec![0u64; p.num_fragments()];
        for (u, &h) in heat.iter().enumerate() {
            per[p.assignment()[u] as usize] += h;
        }
        per
    }
}

/// Query-weighted edge cut: each cut edge `(u, v)` costs
/// `1 + heat[u] + heat[v]`. With `heat ≡ 0` this equals the plain
/// cut-edge count exactly.
pub fn weighted_cut(net: &RoadNetwork, p: &Partitioning, node_heat: &[u64]) -> u64 {
    assert_eq!(node_heat.len(), net.num_nodes(), "one heat entry per node");
    let mut cut = 0u64;
    for (a, b, _) in net.edges() {
        if !p.same_fragment(a, b) {
            cut += 1 + node_heat[a.index()] + node_heat[b.index()];
        }
    }
    cut
}

/// Query-weighted boundary refinement over an existing partitioning:
/// deterministic passes (ascending node order, no RNG) move a boundary
/// node to the adjacent fragment with the largest strictly positive
/// weighted gain, under the blind partitioner's node-count balance cap
/// (`epsilon`) and never emptying a fragment. Each applied move strictly
/// decreases the weighted cut, so the result's [`weighted_cut`] is never
/// above the input's.
pub fn refine_weighted(
    net: &RoadNetwork,
    p: &Partitioning,
    node_heat: &[u64],
    epsilon: f64,
    passes: usize,
) -> Partitioning {
    let n = net.num_nodes();
    let k = p.num_fragments();
    assert_eq!(node_heat.len(), n, "one heat entry per node");
    let mut assignment = p.assignment().to_vec();
    if n == 0 || k <= 1 {
        return Partitioning::from_assignment(net, assignment, k);
    }
    let mut sizes = vec![0u64; k];
    for &a in &assignment {
        sizes[a as usize] += 1;
    }
    let cap = balance_cap(n as u64, k, epsilon);
    let ew = |u: usize, v: usize| 1 + node_heat[u] + node_heat[v];
    for _ in 0..passes {
        let mut moved = 0usize;
        for u in 0..n {
            let from = assignment[u] as usize;
            let mut internal = 0u64;
            for (v, _) in net.neighbors(NodeId(u as u32)) {
                if assignment[v.index()] as usize == from {
                    internal += ew(u, v.index());
                }
            }
            // Small double scan per candidate fragment, as in the blind FM
            // pass — road-network degrees are tiny.
            let mut best: Option<(usize, u64)> = None;
            for (v, _) in net.neighbors(NodeId(u as u32)) {
                let fv = assignment[v.index()] as usize;
                if fv == from {
                    continue;
                }
                let mut external = 0u64;
                for (v2, _) in net.neighbors(NodeId(u as u32)) {
                    if assignment[v2.index()] as usize == fv {
                        external += ew(u, v2.index());
                    }
                }
                if external > internal && best.is_none_or(|(_, g)| external - internal > g) {
                    best = Some((fv, external - internal));
                }
            }
            if let Some((to, _)) = best {
                if sizes[to] < cap && sizes[from] > 1 {
                    sizes[from] -= 1;
                    sizes[to] += 1;
                    assignment[u] = to as u32;
                    moved += 1;
                }
            }
        }
        if moved == 0 {
            break;
        }
    }
    Partitioning::from_assignment(net, assignment, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MultilevelPartitioner, Partitioner};
    use disks_roadnet::generator::GridNetworkConfig;

    #[test]
    fn quantiles_walk_the_observed_distribution() {
        let mut p = LayoutProfile::new();
        assert!(p.radius_quantile(0.9).is_none());
        p.record_radius(10, 5);
        p.record_radius(20, 4);
        p.record_radius(40, 1);
        assert_eq!(p.total_queries(), 10);
        assert_eq!(p.radius_quantile(0.0), Some(10), "q=0 still needs one observation");
        assert_eq!(p.radius_quantile(0.5), Some(10));
        assert_eq!(p.radius_quantile(0.9), Some(20));
        assert_eq!(p.radius_quantile(0.95), Some(40));
        assert_eq!(p.radius_quantile(1.0), Some(40));
    }

    #[test]
    fn keyword_ranks_order_by_heat_then_id() {
        let mut p = LayoutProfile::new();
        p.record_keyword(KeywordId(3), 5);
        p.record_keyword(KeywordId(1), 7);
        p.record_keyword(KeywordId(2), 5);
        assert_eq!(p.keyword_ranks(), vec![(1, 7), (2, 5), (3, 5)]);
    }

    #[test]
    fn node_heat_projects_keywords_onto_objects() {
        let net = GridNetworkConfig::tiny(7).generate();
        let mut p = LayoutProfile::new();
        p.record_keyword(KeywordId(0), 3);
        let heat = p.node_heat(&net);
        for &n in net.nodes_with_keyword(KeywordId(0)) {
            assert_eq!(heat[n.index()], 3);
        }
        let carriers: std::collections::HashSet<usize> =
            net.nodes_with_keyword(KeywordId(0)).iter().map(|n| n.index()).collect();
        for (u, &h) in heat.iter().enumerate() {
            if !carriers.contains(&u) {
                assert_eq!(h, 0);
            }
        }
    }

    #[test]
    fn diffusion_spreads_heat_with_geometric_decay() {
        let net = GridNetworkConfig::tiny(7).generate();
        let mut p = LayoutProfile::new();
        p.record_keyword(KeywordId(0), 8);
        let base = p.node_heat(&net);
        let diffused = p.node_heat_diffused(&net, 2);
        // Diffusion only adds heat, never removes it.
        for (u, (&b, &d)) in base.iter().zip(&diffused).enumerate() {
            assert!(d >= b, "node {u}: diffusion lost heat {b} -> {d}");
        }
        // Every neighbor of a carrier holds at least half the carrier's
        // heat after one hop (and two hops reach the next ring at >= 1/4).
        let one_hop = p.node_heat_diffused(&net, 1);
        for &n in net.nodes_with_keyword(KeywordId(0)) {
            for (v, _) in net.neighbors(n) {
                assert!(one_hop[v.index()] >= base[n.index()] / 2);
            }
        }
        // Zero hops is the identity.
        assert_eq!(p.node_heat_diffused(&net, 0), base);
    }

    #[test]
    fn zero_heat_weighted_cut_is_the_plain_cut() {
        let net = GridNetworkConfig::tiny(11).generate();
        let p = MultilevelPartitioner::default().partition(&net, 4);
        let zero = vec![0u64; net.num_nodes()];
        assert_eq!(weighted_cut(&net, &p, &zero), p.cut_edges() as u64);
    }

    #[test]
    fn refinement_reduces_weighted_cut_and_stays_valid() {
        let net = GridNetworkConfig::small(13).generate();
        let blind = MultilevelPartitioner::default().partition(&net, 6);
        // Heat concentrated on the carriers of two keywords.
        let mut profile = LayoutProfile::new();
        profile.record_keyword(KeywordId(0), 50);
        profile.record_keyword(KeywordId(1), 20);
        let heat = profile.node_heat(&net);
        let before = weighted_cut(&net, &blind, &heat);
        let refined = refine_weighted(&net, &blind, &heat, 0.05, 4);
        refined.validate(&net).unwrap();
        assert_eq!(refined.num_fragments(), 6);
        let after = weighted_cut(&net, &refined, &heat);
        assert!(after <= before, "weighted cut must not increase: {after} > {before}");
        // Fragment sizes stay within the blind partitioner's balance cap.
        let cap = balance_cap(net.num_nodes() as u64, 6, 0.05);
        for f in refined.fragment_ids() {
            assert!((refined.nodes(f).len() as u64) <= cap);
        }
    }

    #[test]
    fn fragment_heat_sums_node_heat() {
        let net = GridNetworkConfig::tiny(17).generate();
        let p = MultilevelPartitioner::default().partition(&net, 3);
        let mut profile = LayoutProfile::new();
        profile.record_keyword(KeywordId(0), 2);
        profile.record_keyword(KeywordId(1), 9);
        let per = profile.fragment_heat(&net, &p);
        assert_eq!(per.len(), 3);
        assert_eq!(per.iter().sum::<u64>(), profile.node_heat(&net).iter().sum::<u64>());
    }
}
