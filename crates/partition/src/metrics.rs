//! Partition-quality metrics reported by the experiment harness.

use disks_roadnet::RoadNetwork;

use crate::fragment::Partitioning;

/// Quality summary of a partitioning.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionMetrics {
    /// Number of fragments.
    pub k: usize,
    /// Cross-fragment edges.
    pub cut_edges: usize,
    /// Query-weighted edge cut (`layout::weighted_cut`): each cut edge
    /// costs `1 + heat(u) + heat(v)`. [`PartitionMetrics::compute`] has no
    /// profile, so it reports the zero-heat degenerate value, which equals
    /// `cut_edges`; use [`PartitionMetrics::compute_weighted`] to score
    /// against an observed workload.
    pub weighted_cut: u64,
    /// Cut edges as a fraction of all edges.
    pub cut_fraction: f64,
    /// Largest fragment size / ideal size.
    pub balance: f64,
    /// Smallest / largest fragment sizes.
    pub min_size: usize,
    pub max_size: usize,
    /// Total portal nodes across fragments (drives NPD-index build cost).
    pub total_portals: usize,
    /// Largest per-fragment portal count.
    pub max_portals: usize,
}

impl PartitionMetrics {
    pub fn compute(net: &RoadNetwork, p: &Partitioning) -> Self {
        let sizes: Vec<usize> = p.fragment_ids().map(|f| p.nodes(f).len()).collect();
        let portal_counts: Vec<usize> = p.fragment_ids().map(|f| p.portals(f).len()).collect();
        PartitionMetrics {
            k: p.num_fragments(),
            cut_edges: p.cut_edges(),
            weighted_cut: p.cut_edges() as u64,
            cut_fraction: if net.num_edges() == 0 {
                0.0
            } else {
                p.cut_edges() as f64 / net.num_edges() as f64
            },
            balance: p.balance(),
            min_size: sizes.iter().copied().min().unwrap_or(0),
            max_size: sizes.iter().copied().max().unwrap_or(0),
            total_portals: portal_counts.iter().sum(),
            max_portals: portal_counts.iter().copied().max().unwrap_or(0),
        }
    }

    /// Like [`compute`](Self::compute), but scoring `weighted_cut` against
    /// a per-node query heat vector (see `layout::weighted_cut`).
    pub fn compute_weighted(net: &RoadNetwork, p: &Partitioning, node_heat: &[u64]) -> Self {
        let mut m = Self::compute(net, p);
        m.weighted_cut = crate::layout::weighted_cut(net, p, node_heat);
        m
    }
}

impl std::fmt::Display for PartitionMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "k={} cut={} ({:.2}%) wcut={} balance={:.3} sizes=[{}, {}] portals={} (max {})",
            self.k,
            self.cut_edges,
            self.cut_fraction * 100.0,
            self.weighted_cut,
            self.balance,
            self.min_size,
            self.max_size,
            self.total_portals,
            self.max_portals
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MultilevelPartitioner, Partitioner};
    use disks_roadnet::generator::GridNetworkConfig;

    #[test]
    fn metrics_are_consistent() {
        let net = GridNetworkConfig::small(1).generate();
        let p = MultilevelPartitioner::default().partition(&net, 4);
        let m = PartitionMetrics::compute(&net, &p);
        assert_eq!(m.k, 4);
        assert_eq!(m.cut_edges, p.cut_edges());
        assert_eq!(m.weighted_cut, p.cut_edges() as u64, "no profile → zero-heat degenerate");
        let heavy = PartitionMetrics::compute_weighted(&net, &p, &vec![1u64; net.num_nodes()]);
        assert_eq!(heavy.weighted_cut, 3 * p.cut_edges() as u64, "uniform heat 1 → 1+1+1 per edge");
        assert!(m.min_size <= m.max_size);
        assert!(m.cut_fraction > 0.0 && m.cut_fraction < 1.0);
        assert!(m.total_portals >= m.max_portals);
        // Each cut edge contributes at most 2 portals.
        assert!(m.total_portals <= 2 * m.cut_edges);
        let rendered = m.to_string();
        assert!(rendered.contains("k=4"));
    }
}
