//! Fragments, assignments, and portal nodes.

use disks_roadnet::{NodeId, RoadNetwork};

/// Dense fragment identifier (a fragment ≙ one machine in the paper's
/// default deployment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FragmentId(pub u32);

impl FragmentId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for FragmentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// A `k`-way node-disjoint partitioning of a road network.
///
/// Holds the node → fragment assignment, per-fragment node lists, and the
/// per-fragment *portal* sets: a node is a portal of its fragment iff it is
/// an endpoint of a cross-fragment edge (§3.2).
#[derive(Debug, Clone)]
pub struct Partitioning {
    assignment: Vec<u32>,
    fragments: Vec<Vec<NodeId>>,
    portals: Vec<Vec<NodeId>>,
    cut_edges: usize,
}

impl Partitioning {
    /// Build from a raw node → fragment assignment. Fragment ids must be
    /// `< k`; `assignment.len()` must equal `net.num_nodes()`.
    ///
    /// # Panics
    /// Panics on malformed input — partitioners are internal producers and a
    /// bad assignment is a programming error, not a runtime condition.
    pub fn from_assignment(net: &RoadNetwork, assignment: Vec<u32>, k: usize) -> Self {
        assert_eq!(assignment.len(), net.num_nodes(), "assignment must label every node");
        assert!(k > 0, "at least one fragment required");
        let mut fragments: Vec<Vec<NodeId>> = vec![Vec::new(); k];
        for (i, &f) in assignment.iter().enumerate() {
            assert!((f as usize) < k, "fragment id {f} out of range (k = {k})");
            fragments[f as usize].push(NodeId(i as u32));
        }
        let mut is_portal = vec![false; net.num_nodes()];
        let mut cut_edges = 0usize;
        for (a, b, _) in net.edges() {
            if assignment[a.index()] != assignment[b.index()] {
                is_portal[a.index()] = true;
                is_portal[b.index()] = true;
                cut_edges += 1;
            }
        }
        let mut portals: Vec<Vec<NodeId>> = vec![Vec::new(); k];
        for (i, &p) in is_portal.iter().enumerate() {
            if p {
                portals[assignment[i] as usize].push(NodeId(i as u32));
            }
        }
        Partitioning { assignment, fragments, portals, cut_edges }
    }

    /// Everything in one fragment — the paper's "1 fragment" centralized
    /// reference configuration.
    pub fn single_fragment(net: &RoadNetwork) -> Self {
        Partitioning::from_assignment(net, vec![0; net.num_nodes()], 1)
    }

    /// Number of fragments `k`.
    pub fn num_fragments(&self) -> usize {
        self.fragments.len()
    }

    /// `part(node)` — the fragment containing `node`.
    #[inline]
    pub fn fragment_of(&self, node: NodeId) -> FragmentId {
        FragmentId(self.assignment[node.index()])
    }

    /// Raw assignment slice (node index → fragment id).
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// Nodes of fragment `f`.
    pub fn nodes(&self, f: FragmentId) -> &[NodeId] {
        &self.fragments[f.index()]
    }

    /// `port(P)` — portal nodes of fragment `f`.
    pub fn portals(&self, f: FragmentId) -> &[NodeId] {
        &self.portals[f.index()]
    }

    /// Number of cross-fragment edges.
    pub fn cut_edges(&self) -> usize {
        self.cut_edges
    }

    /// Iterate fragment ids.
    pub fn fragment_ids(&self) -> impl Iterator<Item = FragmentId> {
        (0..self.fragments.len() as u32).map(FragmentId)
    }

    /// True iff `a` and `b` are in the same fragment.
    #[inline]
    pub fn same_fragment(&self, a: NodeId, b: NodeId) -> bool {
        self.assignment[a.index()] == self.assignment[b.index()]
    }

    /// Fragment-size balance: `max size / ideal size` (1.0 = perfect).
    pub fn balance(&self) -> f64 {
        let n: usize = self.fragments.iter().map(Vec::len).sum();
        if n == 0 {
            return 1.0;
        }
        let ideal = n as f64 / self.fragments.len() as f64;
        let max = self.fragments.iter().map(Vec::len).max().unwrap_or(0) as f64;
        max / ideal
    }

    /// Validate internal consistency against `net` (used by proptests).
    pub fn validate(&self, net: &RoadNetwork) -> Result<(), String> {
        if self.assignment.len() != net.num_nodes() {
            return Err("assignment length mismatch".into());
        }
        let total: usize = self.fragments.iter().map(Vec::len).sum();
        if total != net.num_nodes() {
            return Err("fragments do not cover all nodes".into());
        }
        for f in self.fragment_ids() {
            for &n in self.nodes(f) {
                if self.fragment_of(n) != f {
                    return Err(format!("node {n} listed in wrong fragment {f}"));
                }
            }
            for &p in self.portals(f) {
                if self.fragment_of(p) != f {
                    return Err(format!("portal {p} not inside its fragment {f}"));
                }
                let crosses = net.neighbors(p).any(|(q, _)| self.fragment_of(q) != f);
                if !crosses {
                    return Err(format!("portal {p} has no cross edge"));
                }
            }
        }
        // Every endpoint of every cut edge must be listed as a portal.
        for (a, b, _) in net.edges() {
            if !self.same_fragment(a, b) {
                if !self.portals(self.fragment_of(a)).contains(&a) {
                    return Err(format!("missing portal {a}"));
                }
                if !self.portals(self.fragment_of(b)).contains(&b) {
                    return Err(format!("missing portal {b}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disks_roadnet::graph::figure1_network;

    #[test]
    fn from_assignment_computes_portals_and_cut() {
        let (g, names) = figure1_network();
        // Paper Example 4 fragments: U1 = {A, B}, U2 = {C, D, E}.
        let mut assignment = vec![0u32; 5];
        assignment[names["C"].index()] = 1;
        assignment[names["D"].index()] = 1;
        assignment[names["E"].index()] = 1;
        let p = Partitioning::from_assignment(&g, assignment, 2);
        p.validate(&g).unwrap();
        assert_eq!(p.num_fragments(), 2);
        assert_eq!(p.nodes(FragmentId(0)).len(), 2);
        assert_eq!(p.nodes(FragmentId(1)).len(), 3);
        // Cut edges: (B,C), (A,E), (B,D) → 3.
        assert_eq!(p.cut_edges(), 3);
        let p0: Vec<_> = p.portals(FragmentId(0)).to_vec();
        assert!(p0.contains(&names["A"]) && p0.contains(&names["B"]));
        let p1: Vec<_> = p.portals(FragmentId(1)).to_vec();
        assert!(p1.contains(&names["C"]) && p1.contains(&names["D"]) && p1.contains(&names["E"]));
    }

    #[test]
    fn single_fragment_has_no_portals() {
        let (g, _) = figure1_network();
        let p = Partitioning::single_fragment(&g);
        assert_eq!(p.num_fragments(), 1);
        assert_eq!(p.cut_edges(), 0);
        assert!(p.portals(FragmentId(0)).is_empty());
        assert!((p.balance() - 1.0).abs() < 1e-9);
        p.validate(&g).unwrap();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_fragment_rejected() {
        let (g, _) = figure1_network();
        let _ = Partitioning::from_assignment(&g, vec![0, 0, 0, 0, 7], 2);
    }

    #[test]
    #[should_panic(expected = "label every node")]
    fn short_assignment_rejected() {
        let (g, _) = figure1_network();
        let _ = Partitioning::from_assignment(&g, vec![0, 0], 2);
    }

    #[test]
    fn balance_reflects_skew() {
        let (g, _) = figure1_network();
        let p = Partitioning::from_assignment(&g, vec![0, 0, 0, 0, 1], 2);
        // sizes 4 and 1, ideal 2.5 → balance 1.6
        assert!((p.balance() - 1.6).abs() < 1e-9);
    }
}
