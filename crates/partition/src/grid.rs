//! Geometric kd-splitting partitioner.
//!
//! Recursively splits the node set at the coordinate median along the wider
//! axis, allocating fragments proportionally so any `k` (not just powers of
//! two) yields balanced pieces. Road networks embed in the plane, so median
//! splits give compact fragments with short boundaries — a strong, cheap
//! baseline that is also fully deterministic.

use disks_roadnet::{NodeId, RoadNetwork};

use crate::fragment::Partitioning;
use crate::Partitioner;

/// Geometric kd-split partitioner. Stateless.
#[derive(Debug, Clone, Copy, Default)]
pub struct GridPartitioner;

impl Partitioner for GridPartitioner {
    fn partition(&self, net: &RoadNetwork, k: usize) -> Partitioning {
        assert!(k > 0, "k must be positive");
        let mut assignment = vec![0u32; net.num_nodes()];
        let mut nodes: Vec<NodeId> = net.node_ids().collect();
        split(net, &mut nodes, 0, k, &mut assignment);
        Partitioning::from_assignment(net, assignment, k)
    }
}

/// Assign fragments `base..base+parts` to `nodes`, splitting recursively.
fn split(net: &RoadNetwork, nodes: &mut [NodeId], base: usize, parts: usize, out: &mut [u32]) {
    if parts <= 1 || nodes.len() <= 1 {
        for &n in nodes.iter() {
            out[n.index()] = base as u32;
        }
        return;
    }
    // Choose the wider axis.
    let (mut min_x, mut max_x) = (f32::INFINITY, f32::NEG_INFINITY);
    let (mut min_y, mut max_y) = (f32::INFINITY, f32::NEG_INFINITY);
    for &n in nodes.iter() {
        let (x, y) = net.coord(n);
        min_x = min_x.min(x);
        max_x = max_x.max(x);
        min_y = min_y.min(y);
        max_y = max_y.max(y);
    }
    let use_x = (max_x - min_x) >= (max_y - min_y);
    // Split fragment budget as evenly as possible and pick the pivot index
    // proportional to the left budget.
    let left_parts = parts / 2;
    let right_parts = parts - left_parts;
    let pivot = nodes.len() * left_parts / parts;
    let key = |n: NodeId| -> (f32, u32) {
        let (x, y) = net.coord(n);
        (if use_x { x } else { y }, n.0) // node id tiebreak ⇒ deterministic
    };
    nodes.sort_unstable_by(|&a, &b| key(a).partial_cmp(&key(b)).expect("finite coords"));
    let (left, right) = nodes.split_at_mut(pivot);
    split(net, left, base, left_parts, out);
    split(net, right, base + left_parts, right_parts, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use disks_roadnet::generator::GridNetworkConfig;

    #[test]
    fn covers_all_nodes_with_k_fragments() {
        let net = GridNetworkConfig::small(1).generate();
        for k in [1, 2, 3, 4, 7, 16] {
            let p = GridPartitioner.partition(&net, k);
            assert_eq!(p.num_fragments(), k);
            p.validate(&net).unwrap();
        }
    }

    #[test]
    fn balance_is_tight() {
        let net = GridNetworkConfig::small(2).generate();
        for k in [2, 4, 8, 16] {
            let p = GridPartitioner.partition(&net, k);
            assert!(p.balance() < 1.1, "k={k} balance={}", p.balance());
        }
    }

    #[test]
    fn deterministic() {
        let net = GridNetworkConfig::small(3).generate();
        let a = GridPartitioner.partition(&net, 8);
        let b = GridPartitioner.partition(&net, 8);
        assert_eq!(a.assignment(), b.assignment());
    }

    #[test]
    fn more_nodes_than_fragments_required_handled() {
        let net = GridNetworkConfig::tiny(4).generate();
        // k close to n still works.
        let k = net.num_nodes() / 2;
        let p = GridPartitioner.partition(&net, k);
        p.validate(&net).unwrap();
    }

    #[test]
    fn geometric_fragments_are_mostly_contiguous() {
        // A kd split of a grid should produce far fewer cut edges than a
        // random assignment would (which cuts ~ (1 - 1/k) of all edges).
        let net = GridNetworkConfig::small(5).generate();
        let p = GridPartitioner.partition(&net, 8);
        let cut_frac = p.cut_edges() as f64 / net.num_edges() as f64;
        assert!(cut_frac < 0.25, "cut fraction too high: {cut_frac}");
    }
}
