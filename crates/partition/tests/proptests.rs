//! Property tests: every partitioner yields a valid, complete partitioning
//! with correctly identified portals on arbitrary generated networks.

use proptest::prelude::*;

use disks_partition::{
    BfsPartitioner, GridPartitioner, MultilevelPartitioner, PartitionMetrics, Partitioner,
};
use disks_roadnet::generator::GridNetworkConfig;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_partitioners_produce_valid_partitionings(seed in 0u64..5000, k in 1usize..9) {
        let net = GridNetworkConfig::tiny(seed).generate();
        for p in [
            MultilevelPartitioner::default().partition(&net, k),
            GridPartitioner.partition(&net, k),
            BfsPartitioner::default().partition(&net, k),
        ] {
            p.validate(&net).unwrap();
            prop_assert_eq!(p.num_fragments(), k);
            let m = PartitionMetrics::compute(&net, &p);
            prop_assert!(m.total_portals <= 2 * m.cut_edges);
            if k == 1 {
                prop_assert_eq!(m.cut_edges, 0);
            }
        }
    }

    #[test]
    fn multilevel_never_leaves_fragments_empty(seed in 0u64..5000, k in 2usize..8) {
        let net = GridNetworkConfig::tiny(seed).generate();
        if net.num_nodes() < k {
            return Ok(());
        }
        let p = MultilevelPartitioner::default().partition(&net, k);
        for f in p.fragment_ids() {
            prop_assert!(!p.nodes(f).is_empty(), "fragment {} empty", f);
        }
    }

    #[test]
    fn portals_are_exactly_cut_edge_endpoints(seed in 0u64..5000, k in 2usize..6) {
        let net = GridNetworkConfig::tiny(seed).generate();
        let p = BfsPartitioner::default().partition(&net, k);
        let mut expected: std::collections::HashSet<u32> = std::collections::HashSet::new();
        for (a, b, _) in net.edges() {
            if !p.same_fragment(a, b) {
                expected.insert(a.0);
                expected.insert(b.0);
            }
        }
        let mut listed = std::collections::HashSet::new();
        for f in p.fragment_ids() {
            for &n in p.portals(f) {
                listed.insert(n.0);
            }
        }
        prop_assert_eq!(listed, expected);
    }
}
