//! Property tests: every partitioner yields a valid, complete partitioning
//! with correctly identified portals on arbitrary generated networks.

use proptest::prelude::*;

use disks_partition::{
    refine_weighted, weighted_cut, BfsPartitioner, GridPartitioner, LayoutProfile,
    MultilevelPartitioner, PartitionMetrics, Partitioner,
};
use disks_roadnet::generator::GridNetworkConfig;
use disks_roadnet::KeywordId;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_partitioners_produce_valid_partitionings(seed in 0u64..5000, k in 1usize..9) {
        let net = GridNetworkConfig::tiny(seed).generate();
        for p in [
            MultilevelPartitioner::default().partition(&net, k),
            GridPartitioner.partition(&net, k),
            BfsPartitioner::default().partition(&net, k),
        ] {
            p.validate(&net).unwrap();
            prop_assert_eq!(p.num_fragments(), k);
            let m = PartitionMetrics::compute(&net, &p);
            prop_assert!(m.total_portals <= 2 * m.cut_edges);
            if k == 1 {
                prop_assert_eq!(m.cut_edges, 0);
            }
        }
    }

    #[test]
    fn multilevel_never_leaves_fragments_empty(seed in 0u64..5000, k in 2usize..8) {
        let net = GridNetworkConfig::tiny(seed).generate();
        if net.num_nodes() < k {
            return Ok(());
        }
        let p = MultilevelPartitioner::default().partition(&net, k);
        for f in p.fragment_ids() {
            prop_assert!(!p.nodes(f).is_empty(), "fragment {} empty", f);
        }
    }

    #[test]
    fn portals_are_exactly_cut_edge_endpoints(seed in 0u64..5000, k in 2usize..6) {
        let net = GridNetworkConfig::tiny(seed).generate();
        let p = BfsPartitioner::default().partition(&net, k);
        let mut expected: std::collections::HashSet<u32> = std::collections::HashSet::new();
        for (a, b, _) in net.edges() {
            if !p.same_fragment(a, b) {
                expected.insert(a.0);
                expected.insert(b.0);
            }
        }
        let mut listed = std::collections::HashSet::new();
        for f in p.fragment_ids() {
            for &n in p.portals(f) {
                listed.insert(n.0);
            }
        }
        prop_assert_eq!(listed, expected);
    }

    /// All-equal weights degenerate to the unweighted cut: with zero heat
    /// the weighted cut *is* the cut-edge count, and with uniform heat `h`
    /// it is exactly `(1 + 2h) · cut_edges`.
    #[test]
    fn uniform_weights_degenerate_to_unweighted_cut(
        seed in 0u64..5000, k in 1usize..8, h in 0u64..64
    ) {
        let net = GridNetworkConfig::tiny(seed).generate();
        let p = MultilevelPartitioner::default().partition(&net, k);
        let uniform = vec![h; net.num_nodes()];
        prop_assert_eq!(
            weighted_cut(&net, &p, &uniform),
            (1 + 2 * h) * p.cut_edges() as u64
        );
        let m = PartitionMetrics::compute_weighted(&net, &p, &vec![0u64; net.num_nodes()]);
        prop_assert_eq!(m.weighted_cut, m.cut_edges as u64);
    }

    /// Refinement never increases the weighted cut, keeps the partitioning
    /// valid, and preserves the fragment count — for arbitrary workload
    /// profiles over arbitrary networks.
    #[test]
    fn weighted_refinement_never_increases_weighted_cut(
        seed in 0u64..5000,
        k in 2usize..8,
        kws in proptest::collection::vec((0u32..12, 1u64..100), 0..6),
        passes in 1usize..5,
    ) {
        let net = GridNetworkConfig::tiny(seed).generate();
        let blind = MultilevelPartitioner::default().partition(&net, k);
        let mut profile = LayoutProfile::new();
        for &(kw, w) in &kws {
            profile.record_keyword(KeywordId(kw), w);
        }
        let heat = profile.node_heat(&net);
        let before = weighted_cut(&net, &blind, &heat);
        let refined = refine_weighted(&net, &blind, &heat, 0.05, passes);
        refined.validate(&net).unwrap();
        prop_assert_eq!(refined.num_fragments(), k);
        let after = weighted_cut(&net, &refined, &heat);
        prop_assert!(after <= before, "refinement increased weighted cut: {} -> {}", before, after);
        // The blind cut is a valid weighted cut too: refinement with zero
        // heat must also be monotone in the plain cut metric.
        let zero = vec![0u64; net.num_nodes()];
        let plain = refine_weighted(&net, &blind, &zero, 0.05, passes);
        prop_assert!(plain.cut_edges() <= blind.cut_edges());
    }
}
