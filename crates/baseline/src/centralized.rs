//! The centralized "1 fragment" reference engine.
//!
//! This is exactly the computation the paper plots as the single-machine
//! reference in Figs. 10/11: evaluate every keyword coverage with a
//! multi-source Dijkstra over the entire network and combine with the
//! D-function — no partitioning, no index, no communication.

use std::time::{Duration, Instant};

use disks_core::{CentralizedCoverage, DFunction, QueryError, RangeKeywordQuery, SgkQuery};
use disks_roadnet::{NodeId, RoadNetwork};

/// A timed centralized evaluator.
pub struct CentralizedEngine<'a> {
    inner: CentralizedCoverage<'a>,
}

impl<'a> CentralizedEngine<'a> {
    pub fn new(net: &'a RoadNetwork) -> Self {
        CentralizedEngine { inner: CentralizedCoverage::new(net) }
    }

    /// Evaluate a D-function, returning results and elapsed wall-clock.
    pub fn run(&mut self, f: &DFunction) -> Result<(Vec<NodeId>, Duration), QueryError> {
        let start = Instant::now();
        let results = self.inner.evaluate(f)?;
        Ok((results, start.elapsed()))
    }

    pub fn run_sgkq(&mut self, q: &SgkQuery) -> Result<(Vec<NodeId>, Duration), QueryError> {
        let f = q.to_dfunction_checked().ok_or(QueryError::EmptyQuery)?;
        self.run(&f)
    }

    pub fn run_rkq(
        &mut self,
        q: &RangeKeywordQuery,
    ) -> Result<(Vec<NodeId>, Duration), QueryError> {
        self.run(&q.to_dfunction())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disks_roadnet::generator::GridNetworkConfig;
    use disks_roadnet::KeywordId;

    #[test]
    fn centralized_engine_times_queries() {
        let net = GridNetworkConfig::tiny(80).generate();
        let freqs = net.keyword_frequencies();
        let top = KeywordId((0..freqs.len()).max_by_key(|&k| freqs[k]).unwrap() as u32);
        let mut engine = CentralizedEngine::new(&net);
        let q = SgkQuery::new(vec![top], 4 * net.avg_edge_weight());
        let (results, elapsed) = engine.run_sgkq(&q).unwrap();
        assert!(!results.is_empty());
        assert!(elapsed > Duration::ZERO);
    }

    #[test]
    fn empty_query_rejected() {
        let net = GridNetworkConfig::tiny(81).generate();
        let mut engine = CentralizedEngine::new(&net);
        let q = SgkQuery { keywords: vec![], radius: 1 };
        assert!(matches!(engine.run_sgkq(&q), Err(QueryError::EmptyQuery)));
    }
}
