//! Baselines the paper discusses (§2.3) or uses as references.
//!
//! * [`centralized`] — the "1 fragment" single-machine reference plotted in
//!   Figs. 10/11: whole-graph keyword coverage with no index.
//! * [`bsp`] — a miniature vertex-centric BSP engine in the style of Pregel
//!   \[17\], with per-superstep message accounting.
//! * [`bsp_dijkstra`] — distributed SSSP / keyword coverage / SGKQ on the
//!   BSP engine. This is the "general graph processing" alternative the
//!   paper argues against: correct, but it pays multiple communication
//!   rounds and inter-worker messages per query, which the experiment
//!   harness contrasts with the NPD-index's single round and zero
//!   inter-worker bytes.
//! * [`partition_dijkstra`] — the partition-based iterative-correcting
//!   shortest-path scheme of Tang et al. \[23\]: local Dijkstra per fragment
//!   plus boundary-exchange rounds until a fixpoint.

pub mod bsp;
pub mod bsp_dijkstra;
pub mod centralized;
pub mod partition_dijkstra;

pub use bsp::{BspRun, MAX_SUPERSTEPS};
pub use bsp_dijkstra::{bsp_keyword_coverage, bsp_sgkq, bsp_sssp};
pub use centralized::CentralizedEngine;
pub use partition_dijkstra::{iterative_coverage, iterative_sssp, IterativeStats};
