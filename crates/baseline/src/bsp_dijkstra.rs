//! Distributed SSSP and spatial-keyword queries on the BSP engine.
//!
//! This is the Pregel-style alternative of §2.3: correct, general, but
//! paying one communication round per shortest-path "wavefront" hop and an
//! inter-fragment message per cut-edge relaxation. The experiment harness
//! contrasts its `supersteps` / `inter_fragment_bytes` with the NPD-index's
//! 1 round / 0 bytes.

use disks_partition::Partitioning;
use disks_roadnet::{KeywordId, NodeId, RoadNetwork, INF};

use crate::bsp::{run_bsp, BspRun};

/// Wire size of one SSSP message (target vertex u32 + distance u64).
pub const SSSP_MESSAGE_BYTES: usize = 12;

/// Multi-source bounded SSSP on the BSP engine. Returns the distance vector
/// (INF = unreached / beyond `bound`) and the run accounting.
pub fn bsp_sssp(
    net: &RoadNetwork,
    partitioning: &Partitioning,
    sources: &[(u32, u64)],
    bound: u64,
) -> (Vec<u64>, BspRun) {
    let mut dist = vec![INF; net.num_nodes()];
    let initial: Vec<(u32, u64)> =
        sources.iter().filter(|&&(_, d)| d <= bound).map(|&(s, d)| (s, d)).collect();
    let run = run_bsp(
        net,
        partitioning,
        &mut dist,
        initial,
        |a, b| *a.min(b),
        |v, dv, msg, send| {
            if msg < *dv {
                *dv = msg;
                for (u, w) in net.neighbors(NodeId(v)) {
                    let nd = msg.saturating_add(u64::from(w));
                    if nd <= bound {
                        send(u.0, nd);
                    }
                }
            }
        },
        SSSP_MESSAGE_BYTES,
    );
    (dist, run)
}

/// Keyword coverage `R(ω, r)` on the BSP engine.
pub fn bsp_keyword_coverage(
    net: &RoadNetwork,
    partitioning: &Partitioning,
    keyword: KeywordId,
    radius: u64,
) -> (Vec<NodeId>, BspRun) {
    let sources: Vec<(u32, u64)> =
        net.nodes_with_keyword(keyword).iter().map(|n| (n.0, 0)).collect();
    let (dist, run) = bsp_sssp(net, partitioning, &sources, radius);
    let nodes = crate::bsp::coverage_nodes(&dist, radius);
    (nodes, run)
}

/// SGKQ on the BSP engine: one SSSP per keyword, then intersection.
/// Accounting is summed over the per-keyword runs.
pub fn bsp_sgkq(
    net: &RoadNetwork,
    partitioning: &Partitioning,
    keywords: &[KeywordId],
    radius: u64,
) -> (Vec<NodeId>, BspRun) {
    assert!(!keywords.is_empty(), "at least one keyword required");
    let mut total = BspRun::default();
    let mut acc: Option<Vec<NodeId>> = None;
    for &kw in keywords {
        let (nodes, run) = bsp_keyword_coverage(net, partitioning, kw, radius);
        total.supersteps += run.supersteps;
        total.total_messages += run.total_messages;
        total.inter_fragment_messages += run.inter_fragment_messages;
        total.inter_fragment_bytes += run.inter_fragment_bytes;
        total.computes += run.computes;
        acc = Some(match acc {
            None => nodes,
            Some(prev) => intersect_sorted(&prev, &nodes),
        });
    }
    (acc.unwrap_or_default(), total)
}

fn intersect_sorted(a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use disks_core::{CentralizedCoverage, SgkQuery, Term};
    use disks_partition::{MultilevelPartitioner, Partitioner};
    use disks_roadnet::generator::GridNetworkConfig;
    use disks_roadnet::DijkstraWorkspace;

    fn top_keywords(net: &RoadNetwork, n: usize) -> Vec<KeywordId> {
        let freqs = net.keyword_frequencies();
        let mut ranked: Vec<usize> = (0..freqs.len()).filter(|&k| freqs[k] > 0).collect();
        ranked.sort_unstable_by_key(|&k| std::cmp::Reverse(freqs[k]));
        ranked.into_iter().take(n).map(|k| KeywordId(k as u32)).collect()
    }

    #[test]
    fn bsp_sssp_matches_dijkstra() {
        let net = GridNetworkConfig::tiny(93).generate();
        let p = MultilevelPartitioner::default().partition(&net, 3);
        let source = 0u32;
        let (dist, run) = bsp_sssp(&net, &p, &[(source, 0)], INF - 1);
        let mut ws = DijkstraWorkspace::new(net.num_nodes());
        let expect = ws.distances_from(&net, source, INF - 1);
        for (n, d) in expect {
            assert_eq!(dist[n as usize], d, "node {n}");
        }
        assert!(run.supersteps > 1);
    }

    #[test]
    fn bsp_coverage_matches_centralized() {
        let net = GridNetworkConfig::tiny(94).generate();
        let p = MultilevelPartitioner::default().partition(&net, 4);
        let kw = top_keywords(&net, 1)[0];
        let r = 4 * net.avg_edge_weight();
        let (nodes, run) = bsp_keyword_coverage(&net, &p, kw, r);
        let mut central = CentralizedCoverage::new(&net);
        let expect: Vec<NodeId> =
            central.coverage(Term::Keyword(kw), r).iter().map(|i| NodeId(i as u32)).collect();
        assert_eq!(nodes, expect);
        assert!(run.inter_fragment_messages > 0, "a multi-fragment coverage must cross boundaries");
    }

    #[test]
    fn bsp_sgkq_matches_centralized() {
        let net = GridNetworkConfig::tiny(95).generate();
        let p = MultilevelPartitioner::default().partition(&net, 3);
        let kws = top_keywords(&net, 2);
        let r = 5 * net.avg_edge_weight();
        let (nodes, run) = bsp_sgkq(&net, &p, &kws, r);
        let mut central = CentralizedCoverage::new(&net);
        let expect = central.sgkq(&SgkQuery::new(kws, r)).unwrap();
        assert_eq!(nodes, expect);
        assert!(run.supersteps >= 2, "one round per wavefront hop per keyword");
    }

    #[test]
    fn single_fragment_has_no_inter_fragment_traffic() {
        let net = GridNetworkConfig::tiny(96).generate();
        let p = Partitioning::single_fragment(&net);
        let kw = top_keywords(&net, 1)[0];
        let (_, run) = bsp_keyword_coverage(&net, &p, kw, 4 * net.avg_edge_weight());
        assert_eq!(run.inter_fragment_messages, 0);
        assert!(run.total_messages > 0);
    }
}
