//! Partition-based iterative-correcting shortest paths (Tang et al. \[23\]).
//!
//! Each fragment runs a *local* Dijkstra restricted to its own subgraph from
//! whatever seed distances it currently has. Then a boundary-exchange round
//! relaxes every cut edge: if `dist[u] + w < dist[v]` for a cut edge
//! `(u, v)`, fragment `part(v)` receives the corrected seed and must re-run
//! its local Dijkstra. Rounds repeat until no cut edge improves — the
//! "iterative correcting" of \[23\]. Every correction message crossing a
//! fragment boundary is counted; the paper's point (§2.3) is precisely that
//! such schemes "need multiple rounds of communications between machines".

use disks_partition::Partitioning;
use disks_roadnet::dijkstra::Control;
use disks_roadnet::{DijkstraWorkspace, Graph, KeywordId, NodeId, RoadNetwork, Weight, INF};

/// Accounting for one iterative-correcting run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IterativeStats {
    /// Boundary-exchange rounds until fixpoint (≥ 1).
    pub rounds: usize,
    /// Correction messages crossing fragment boundaries.
    pub boundary_messages: u64,
    /// Bytes of those messages (12 bytes: vertex u32 + distance u64).
    pub boundary_bytes: u64,
    /// Local Dijkstra re-runs across fragments.
    pub local_runs: u64,
}

/// A view of one fragment's subgraph (edges with both ends inside).
struct FragmentView<'a> {
    net: &'a RoadNetwork,
    assignment: &'a [u32],
    fragment: u32,
}

impl Graph for FragmentView<'_> {
    fn num_nodes(&self) -> usize {
        self.net.num_nodes()
    }

    fn for_each_neighbor(&self, node: u32, f: &mut dyn FnMut(u32, Weight)) {
        if self.assignment[node as usize] != self.fragment {
            return;
        }
        for (u, w) in self.net.neighbors(NodeId(node)) {
            if self.assignment[u.index()] == self.fragment {
                f(u.0, w);
            }
        }
    }
}

/// Multi-source bounded SSSP by iterative correcting. Returns the global
/// distance vector and the round/message accounting.
pub fn iterative_sssp(
    net: &RoadNetwork,
    partitioning: &Partitioning,
    sources: &[(u32, u64)],
    bound: u64,
) -> (Vec<u64>, IterativeStats) {
    let n = net.num_nodes();
    let k = partitioning.num_fragments();
    let assignment = partitioning.assignment();
    let mut dist = vec![INF; n];
    let mut stats = IterativeStats::default();
    let mut ws = DijkstraWorkspace::new(n);

    // Pending seeds per fragment.
    let mut pending: Vec<Vec<(u32, u64)>> = vec![Vec::new(); k];
    for &(s, d) in sources {
        if d <= bound {
            pending[assignment[s as usize] as usize].push((s, d));
        }
    }

    loop {
        stats.rounds += 1;
        // Local phase: every fragment with pending seeds re-runs Dijkstra on
        // its own subgraph, keeping the better of (existing, newly found).
        let mut improved_any = false;
        #[allow(clippy::needless_range_loop)] // `pending[f]` is taken by value below
        for f in 0..k {
            if pending[f].is_empty() {
                continue;
            }
            stats.local_runs += 1;
            let seeds = std::mem::take(&mut pending[f]);
            let view = FragmentView { net, assignment, fragment: f as u32 };
            // Seed with both new corrections and already-known distances of
            // this fragment's nodes so the local run can only improve.
            let mut all_seeds = seeds;
            for &node in partitioning.nodes(disks_partition::FragmentId(f as u32)) {
                if dist[node.index()] != INF {
                    all_seeds.push((node.0, dist[node.index()]));
                }
            }
            ws.run(&view, &all_seeds, bound, |u, d| {
                if d < dist[u as usize] {
                    dist[u as usize] = d;
                    improved_any = true;
                }
                Control::Continue
            });
        }
        if !improved_any && stats.rounds > 1 {
            break;
        }
        // Boundary exchange: relax every cut edge in both directions.
        let mut corrections = 0u64;
        for (a, b, w) in net.edges() {
            let (fa, fb) = (assignment[a.index()], assignment[b.index()]);
            if fa == fb {
                continue;
            }
            let via_a = dist[a.index()].saturating_add(u64::from(w));
            if via_a <= bound && via_a < dist[b.index()] {
                pending[fb as usize].push((b.0, via_a));
                corrections += 1;
            }
            let via_b = dist[b.index()].saturating_add(u64::from(w));
            if via_b <= bound && via_b < dist[a.index()] {
                pending[fa as usize].push((a.0, via_b));
                corrections += 1;
            }
        }
        stats.boundary_messages += corrections;
        stats.boundary_bytes += corrections * 12;
        if corrections == 0 {
            break;
        }
    }
    (dist, stats)
}

/// Keyword coverage by iterative correcting.
pub fn iterative_coverage(
    net: &RoadNetwork,
    partitioning: &Partitioning,
    keyword: KeywordId,
    radius: u64,
) -> (Vec<NodeId>, IterativeStats) {
    let sources: Vec<(u32, u64)> =
        net.nodes_with_keyword(keyword).iter().map(|n| (n.0, 0)).collect();
    let (dist, stats) = iterative_sssp(net, partitioning, &sources, radius);
    let nodes = dist
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d <= radius)
        .map(|(i, _)| NodeId(i as u32))
        .collect();
    (nodes, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use disks_core::{CentralizedCoverage, Term};
    use disks_partition::{MultilevelPartitioner, Partitioner};
    use disks_roadnet::generator::GridNetworkConfig;

    #[test]
    fn iterative_sssp_matches_dijkstra() {
        let net = GridNetworkConfig::tiny(100).generate();
        let p = MultilevelPartitioner::default().partition(&net, 4);
        let (dist, stats) = iterative_sssp(&net, &p, &[(3, 0)], INF - 1);
        let mut ws = DijkstraWorkspace::new(net.num_nodes());
        for (n, d) in ws.distances_from(&net, 3, INF - 1) {
            assert_eq!(dist[n as usize], d, "node {n}");
        }
        assert!(stats.rounds >= 2, "multi-fragment SSSP needs correction rounds");
        assert!(stats.boundary_messages > 0);
    }

    #[test]
    fn iterative_coverage_matches_centralized() {
        let net = GridNetworkConfig::tiny(101).generate();
        let p = MultilevelPartitioner::default().partition(&net, 3);
        let freqs = net.keyword_frequencies();
        let kw = KeywordId((0..freqs.len()).max_by_key(|&k| freqs[k]).unwrap() as u32);
        let r = 5 * net.avg_edge_weight();
        let (nodes, _) = iterative_coverage(&net, &p, kw, r);
        let mut central = CentralizedCoverage::new(&net);
        let expect: Vec<NodeId> =
            central.coverage(Term::Keyword(kw), r).iter().map(|i| NodeId(i as u32)).collect();
        assert_eq!(nodes, expect);
    }

    #[test]
    fn single_fragment_needs_no_boundary_messages() {
        let net = GridNetworkConfig::tiny(102).generate();
        let p = Partitioning::single_fragment(&net);
        let (_, stats) = iterative_sssp(&net, &p, &[(0, 0)], INF - 1);
        assert_eq!(stats.boundary_messages, 0);
        assert_eq!(stats.rounds, 1);
    }

    #[test]
    fn bounded_radius_limits_reach() {
        let net = GridNetworkConfig::tiny(103).generate();
        let p = MultilevelPartitioner::default().partition(&net, 2);
        let e = net.avg_edge_weight();
        let (dist, _) = iterative_sssp(&net, &p, &[(0, 0)], 2 * e);
        assert!(dist.iter().all(|&d| d == INF || d <= 2 * e));
        assert!(dist.iter().any(|&d| d != INF));
    }
}
