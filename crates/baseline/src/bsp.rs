//! A miniature vertex-centric BSP engine in the style of Pregel \[17\].
//!
//! The engine executes supersteps over a road network whose vertices are
//! distributed across fragments (machines). Within a superstep, every
//! vertex with pending messages runs a user `compute` function that may
//! update its state and emit messages along edges; messages destined for a
//! vertex in a *different* fragment are counted as inter-worker traffic —
//! the communication the NPD-index eliminates.
//!
//! The simulation executes supersteps sequentially and deterministically
//! (message combining per target vertex, targets processed in id order), so
//! baseline measurements are exactly reproducible. The *cost accounting* —
//! supersteps (communication rounds) and inter-fragment message bytes — is
//! what the experiments consume; wall-clock of the simulated engine is
//! reported too but is secondary.

use std::collections::HashMap;

use disks_partition::Partitioning;
use disks_roadnet::{NodeId, RoadNetwork};

/// Safety cap on supersteps (a correct SSSP converges long before this on
/// any graph the harness generates).
pub const MAX_SUPERSTEPS: usize = 100_000;

/// Accounting for one BSP run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BspRun {
    /// Supersteps executed (= communication rounds in a real deployment).
    pub supersteps: usize,
    /// All messages sent.
    pub total_messages: u64,
    /// Messages crossing a fragment boundary.
    pub inter_fragment_messages: u64,
    /// Bytes of those messages (at `message_bytes` each).
    pub inter_fragment_bytes: u64,
    /// Vertex-compute invocations.
    pub computes: u64,
}

/// Run a BSP computation.
///
/// * `state` — per-vertex mutable state.
/// * `initial` — seed messages delivered at superstep 0.
/// * `combine` — associative/commutative combiner applied to messages with
///   the same target (Pregel's combiner optimization; without it the
///   message counts would only be larger, so the comparison stays fair).
/// * `compute(v, state_v, msg, send)` — vertex program; `send(u, m)` emits a
///   message to vertex `u` for the next superstep.
/// * `message_bytes` — wire size of one message, for byte accounting.
pub fn run_bsp<M: Clone, S>(
    net: &RoadNetwork,
    partitioning: &Partitioning,
    state: &mut [S],
    initial: Vec<(u32, M)>,
    combine: impl Fn(&M, &M) -> M,
    mut compute: impl FnMut(u32, &mut S, M, &mut dyn FnMut(u32, M)),
    message_bytes: usize,
) -> BspRun {
    assert_eq!(state.len(), net.num_nodes(), "one state per vertex required");
    let assignment = partitioning.assignment();
    let mut run = BspRun::default();
    let mut inbox: HashMap<u32, M> = HashMap::new();
    for (target, msg) in initial {
        merge(&mut inbox, target, msg, &combine);
    }
    while !inbox.is_empty() && run.supersteps < MAX_SUPERSTEPS {
        run.supersteps += 1;
        let mut outbox: HashMap<u32, M> = HashMap::new();
        // Deterministic vertex order.
        let mut targets: Vec<u32> = inbox.keys().copied().collect();
        targets.sort_unstable();
        for v in targets {
            let msg = inbox.remove(&v).expect("target present");
            run.computes += 1;
            let vs = &mut state[v as usize];
            let mut send = |u: u32, m: M| {
                run.total_messages += 1;
                if assignment[u as usize] != assignment[v as usize] {
                    run.inter_fragment_messages += 1;
                    run.inter_fragment_bytes += message_bytes as u64;
                }
                merge(&mut outbox, u, m, &combine);
            };
            compute(v, vs, msg, &mut send);
        }
        inbox = outbox;
    }
    run
}

fn merge<M: Clone>(
    inbox: &mut HashMap<u32, M>,
    target: u32,
    msg: M,
    combine: &impl Fn(&M, &M) -> M,
) {
    match inbox.entry(target) {
        std::collections::hash_map::Entry::Occupied(mut e) => {
            let merged = combine(e.get(), &msg);
            e.insert(merged);
        }
        std::collections::hash_map::Entry::Vacant(e) => {
            e.insert(msg);
        }
    }
}

/// Convenience: node ids of a coverage result.
pub fn coverage_nodes(dist: &[u64], radius: u64) -> Vec<NodeId> {
    dist.iter().enumerate().filter(|&(_, &d)| d <= radius).map(|(i, _)| NodeId(i as u32)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use disks_partition::{MultilevelPartitioner, Partitioner};
    use disks_roadnet::generator::GridNetworkConfig;
    use disks_roadnet::INF;

    /// A trivial "propagate max" program: floods the maximum seed value.
    #[test]
    fn bsp_flood_reaches_every_vertex() {
        let net = GridNetworkConfig::tiny(90).generate();
        let p = MultilevelPartitioner::default().partition(&net, 3);
        let mut state = vec![0u64; net.num_nodes()];
        let run = run_bsp(
            &net,
            &p,
            &mut state,
            vec![(0, 42u64)],
            |a, b| *a.max(b),
            |v, s, msg, send| {
                if msg > *s {
                    *s = msg;
                    let mut nbrs = Vec::new();
                    for (u, _) in net.neighbors(NodeId(v)) {
                        nbrs.push(u.0);
                    }
                    for u in nbrs {
                        send(u, msg);
                    }
                }
            },
            8,
        );
        assert!(state.iter().all(|&s| s == 42), "flood must reach all vertices");
        assert!(run.supersteps > 1, "multi-round by nature");
        assert!(run.inter_fragment_messages > 0, "crossing fragments costs messages");
        assert_eq!(run.inter_fragment_bytes, run.inter_fragment_messages * 8);
    }

    #[test]
    fn empty_initial_messages_terminate_immediately() {
        let net = GridNetworkConfig::tiny(91).generate();
        let p = MultilevelPartitioner::default().partition(&net, 2);
        let mut state = vec![INF; net.num_nodes()];
        let run = run_bsp(
            &net,
            &p,
            &mut state,
            Vec::<(u32, u64)>::new(),
            |a, b| *a.min(b),
            |_, _, _, _| {},
            12,
        );
        assert_eq!(run.supersteps, 0);
        assert_eq!(run.total_messages, 0);
    }

    #[test]
    fn combiner_collapses_messages_per_target() {
        // Two seeds to the same vertex: compute must be called once with the
        // combined value.
        let net = GridNetworkConfig::tiny(92).generate();
        let p = MultilevelPartitioner::default().partition(&net, 2);
        let mut state = vec![INF; net.num_nodes()];
        let mut seen: Vec<u64> = Vec::new();
        run_bsp(
            &net,
            &p,
            &mut state,
            vec![(5, 10u64), (5, 3u64)],
            |a, b| *a.min(b),
            |v, _, msg, _| {
                assert_eq!(v, 5);
                seen.push(msg);
            },
            12,
        );
        assert_eq!(seen, vec![3]);
    }
}
