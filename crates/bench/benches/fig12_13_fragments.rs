//! Criterion bench for Figures 12/13: total per-query fan-out work vs
//! #fragments (all fragment tasks run sequentially under criterion). The
//! paper's halving response-time trend is measured by `repro --exp
//! fig12,fig13`, which takes the slowest task; this bench tracks how the
//! *total* work stays roughly constant while being split across more
//! fragments.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use disks_bench::datasets::{load, DatasetId, Scale};
use disks_bench::experiments::Deployment;
use disks_bench::queries::QueryGenerator;
use disks_core::{DFunction, IndexConfig};

fn bench_fragments(c: &mut Criterion) {
    let ds = load(DatasetId::Aus, Scale::Bench);
    let e = ds.net.avg_edge_weight();
    let max_r = 40 * e;
    let fs: Vec<DFunction> = QueryGenerator::new(&ds.net, 0xC)
        .sgkq_batch(3, 5, max_r)
        .iter()
        .map(|q| q.to_dfunction())
        .collect();
    let mut group = c.benchmark_group("fig12_13_fragments");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    for k in [2usize, 8, 16] {
        let mut dep = Deployment::prepare(&ds.net, k, &IndexConfig::with_max_r(max_r));
        group.bench_with_input(BenchmarkId::new("fanout_work", k), &k, |b, _| {
            b.iter(|| {
                for f in &fs {
                    std::hint::black_box(dep.response_time(f));
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fragments);
criterion_main!(benches);
