//! Criterion bench for Table 3: NPD-index construction time per fragment,
//! varying maxR (AUS-like, bench scale, k = 8).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use disks_bench::datasets::{load, DatasetId, Scale};
use disks_core::{build_all_indexes, IndexConfig};
use disks_partition::{MultilevelPartitioner, Partitioner};

fn bench_indexing(c: &mut Criterion) {
    let ds = load(DatasetId::Aus, Scale::Bench);
    let e = ds.net.avg_edge_weight();
    let partitioning = MultilevelPartitioner::default().partition(&ds.net, 8);
    let mut group = c.benchmark_group("tab3_indexing_time");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    for factor in [10u64, 20, 40] {
        group.bench_with_input(BenchmarkId::new("maxR_factor", factor), &factor, |b, &f| {
            let cfg = IndexConfig::with_max_r(f * e);
            b.iter(|| build_all_indexes(&ds.net, &partitioning, &cfg));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_indexing);
criterion_main!(benches);
