//! Criterion bench for Figure 9: SGKQ evaluation time vs the index maxR
//! (query radius fixed at 5ē) — maxR should have very limited effect.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use disks_bench::datasets::{load, DatasetId, Scale};
use disks_bench::experiments::Deployment;
use disks_bench::queries::QueryGenerator;
use disks_core::{DFunction, IndexConfig};
use disks_roadnet::INF;

fn bench_maxr(c: &mut Criterion) {
    let ds = load(DatasetId::Aus, Scale::Bench);
    let e = ds.net.avg_edge_weight();
    let r = 5 * e;
    let fs: Vec<DFunction> = QueryGenerator::new(&ds.net, 0x9)
        .sgkq_batch(5, 5, r)
        .iter()
        .map(|q| q.to_dfunction())
        .collect();
    let mut group = c.benchmark_group("fig9_query_vs_maxr");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (label, max_r) in [("5e", 5 * e), ("40e", 40 * e), ("inf", INF)] {
        let mut dep = Deployment::prepare(&ds.net, 8, &IndexConfig::with_max_r(max_r));
        group.bench_with_input(BenchmarkId::new("maxR", label), &label, |b, _| {
            b.iter(|| {
                for f in &fs {
                    std::hint::black_box(dep.evaluate(f));
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_maxr);
criterion_main!(benches);
