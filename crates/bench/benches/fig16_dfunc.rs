//! Criterion bench for Figure 16: D-function operator mix (7 keywords,
//! 0/3/5 subtraction operators) — mixes should perform alike.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use disks_bench::datasets::{load, DatasetId, Scale};
use disks_bench::experiments::Deployment;
use disks_bench::queries::QueryGenerator;
use disks_core::{DFunction, IndexConfig, SetOp, Term};

fn bench_dfunc(c: &mut Criterion) {
    let ds = load(DatasetId::Aus, Scale::Bench);
    let e = ds.net.avg_edge_weight();
    let max_r = 40 * e;
    let mut dep = Deployment::prepare(&ds.net, 8, &IndexConfig::with_max_r(max_r));
    let queries = QueryGenerator::new(&ds.net, 0xF1).sgkq_batch(3, 7, max_r);
    let mut group = c.benchmark_group("fig16_dfunc_mix");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    for subs in [0usize, 3, 5] {
        let fs: Vec<DFunction> = queries
            .iter()
            .map(|q| {
                let mut f = DFunction::single(Term::Keyword(q.keywords[0]), max_r);
                for (i, &k) in q.keywords[1..].iter().enumerate() {
                    let op = if i < subs { SetOp::Subtract } else { SetOp::Intersect };
                    f = f.then(op, Term::Keyword(k), max_r);
                }
                f
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("subtractions", subs), &subs, |b, _| {
            b.iter(|| {
                for f in &fs {
                    std::hint::black_box(dep.evaluate(f));
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dfunc);
criterion_main!(benches);
