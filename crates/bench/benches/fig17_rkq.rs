//! Criterion bench for Figure 17: RKQ evaluation time vs #keywords.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use disks_bench::datasets::{load, DatasetId, Scale};
use disks_bench::experiments::Deployment;
use disks_bench::queries::QueryGenerator;
use disks_core::{DFunction, IndexConfig};

fn bench_rkq(c: &mut Criterion) {
    let ds = load(DatasetId::Aus, Scale::Bench);
    let e = ds.net.avg_edge_weight();
    let max_r = 40 * e;
    let mut dep = Deployment::prepare(&ds.net, 8, &IndexConfig::with_max_r(max_r));
    let mut group = c.benchmark_group("fig17_rkq");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    for nk in [3usize, 7, 11] {
        let fs: Vec<DFunction> = QueryGenerator::new(&ds.net, 0xF7 + nk as u64)
            .rkq_batch(3, nk, max_r)
            .iter()
            .map(|q| q.to_dfunction())
            .collect();
        if fs.is_empty() {
            continue;
        }
        group.bench_with_input(BenchmarkId::new("keywords", nk), &nk, |b, _| {
            b.iter(|| {
                for f in &fs {
                    std::hint::black_box(dep.evaluate(f));
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rkq);
criterion_main!(benches);
