//! Criterion bench for the top-k extension: ranked group-keyword queries
//! vs the equivalent radius-coverage SGKQ, per k.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use disks_bench::datasets::{load, DatasetId, Scale};
use disks_bench::experiments::Deployment;
use disks_bench::queries::QueryGenerator;
use disks_core::{IndexConfig, ScoreCombine, TopKQuery};

fn bench_topk(c: &mut Criterion) {
    let ds = load(DatasetId::Aus, Scale::Bench);
    let e = ds.net.avg_edge_weight();
    let max_r = 40 * e;
    let mut dep = Deployment::prepare(&ds.net, 8, &IndexConfig::with_max_r(max_r));
    let queries = QueryGenerator::new(&ds.net, 0x70B).sgkq_batch(3, 3, max_r);
    let mut group = c.benchmark_group("topk_extension");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    for k in [1usize, 10, 100] {
        let qs: Vec<TopKQuery> = queries
            .iter()
            .map(|q| TopKQuery::new(q.keywords.clone(), k, 10 * e, ScoreCombine::Max))
            .collect();
        group.bench_with_input(BenchmarkId::new("k", k), &k, |b, _| {
            b.iter(|| {
                for q in &qs {
                    for engine in &mut dep.engines {
                        std::hint::black_box(engine.topk_local(q).unwrap());
                    }
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_topk);
criterion_main!(benches);
