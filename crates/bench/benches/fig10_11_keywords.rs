//! Criterion bench for Figures 10/11: SGKQ cost vs #keywords on both
//! datasets. NOTE: criterion measures the *total fan-out work* of the
//! distributed arm (all 8 fragment tasks run sequentially on one host), so
//! `distributed` here tracks total work, not response time; the
//! response-time comparison (slowest task + modeled network) is produced by
//! `repro --exp fig10,fig11`. The shapes to read off this bench are the
//! slopes in #keywords.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use disks_baseline::CentralizedEngine;
use disks_bench::datasets::{load, DatasetId, Scale};
use disks_bench::experiments::Deployment;
use disks_bench::queries::QueryGenerator;
use disks_core::{DFunction, IndexConfig};

fn bench_keywords(c: &mut Criterion) {
    for id in [DatasetId::Bri, DatasetId::Aus] {
        let ds = load(id, Scale::Bench);
        let e = ds.net.avg_edge_weight();
        let max_r = 40 * e;
        let mut dep = Deployment::prepare(&ds.net, 8, &IndexConfig::with_max_r(max_r));
        let mut group = c.benchmark_group(format!("fig10_11_keywords_{}", id.name()));
        group.sample_size(10);
        group.warm_up_time(std::time::Duration::from_secs(1));
        group.measurement_time(std::time::Duration::from_secs(2));
        for nk in [3usize, 7, 11] {
            let fs: Vec<DFunction> = QueryGenerator::new(&ds.net, 0xA0 + nk as u64)
                .sgkq_batch(3, nk, max_r)
                .iter()
                .map(|q| q.to_dfunction())
                .collect();
            if fs.is_empty() {
                continue;
            }
            group.bench_with_input(BenchmarkId::new("distributed", nk), &nk, |b, _| {
                b.iter(|| {
                    for f in &fs {
                        std::hint::black_box(dep.evaluate(f));
                    }
                });
            });
            group.bench_with_input(BenchmarkId::new("one_fragment", nk), &nk, |b, _| {
                b.iter(|| {
                    let mut central = CentralizedEngine::new(&ds.net);
                    for f in &fs {
                        std::hint::black_box(central.run(f).unwrap());
                    }
                });
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_keywords);
criterion_main!(benches);
