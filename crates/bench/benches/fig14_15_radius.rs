//! Criterion bench for Figures 14/15: SGKQ time vs query radius r.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use disks_bench::datasets::{load, DatasetId, Scale};
use disks_bench::experiments::Deployment;
use disks_bench::queries::QueryGenerator;
use disks_core::{DFunction, IndexConfig};

fn bench_radius(c: &mut Criterion) {
    let ds = load(DatasetId::Aus, Scale::Bench);
    let e = ds.net.avg_edge_weight();
    let max_r = 40 * e;
    let mut dep = Deployment::prepare(&ds.net, 8, &IndexConfig::with_max_r(max_r));
    let mut group = c.benchmark_group("fig14_15_radius");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    for div in [4u64, 2, 1] {
        let r = max_r / div;
        let fs: Vec<DFunction> = QueryGenerator::new(&ds.net, 0xD0 + div)
            .sgkq_batch(3, 5, r)
            .iter()
            .map(|q| q.to_dfunction())
            .collect();
        group.bench_with_input(BenchmarkId::new("maxR_div", div), &div, |b, _| {
            b.iter(|| {
                for f in &fs {
                    std::hint::black_box(dep.evaluate(f));
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_radius);
criterion_main!(benches);
