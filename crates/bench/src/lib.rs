//! Experiment harness reproducing the paper's evaluation (§6).
//!
//! Every table and figure of the paper has a runner here (see the
//! per-experiment index in `DESIGN.md` §3 and the recorded outcomes in
//! `EXPERIMENTS.md`):
//!
//! | Paper artifact | Runner |
//! |----------------|--------|
//! | Tab. 1 (datasets) | [`experiments::tab1_datasets`] |
//! | Tab. 2 (parameters) | [`params::parameter_table`] |
//! | Tab. 3 (indexing time) | [`experiments::tab3_indexing_time`] |
//! | Fig. 7 (index size vs maxR, #fragments) | [`experiments::fig7_index_size`] |
//! | Fig. 8 (index size incl. maxR = ∞) | [`experiments::fig8_index_size_unbounded`] |
//! | Fig. 9 (query time vs maxR) | [`experiments::fig9_query_time_vs_maxr`] |
//! | Figs. 10/11 (vs #keywords) | [`experiments::fig10_11_keywords`] |
//! | Figs. 12/13 (vs #fragments) | [`experiments::fig12_13_fragments`] |
//! | Figs. 14/15 (vs r) | [`experiments::fig14_15_radius`] |
//! | Fig. 16 (D-function mix) | [`experiments::fig16_dfunctions`] |
//! | Fig. 17 (RKQ) | [`experiments::fig17_rkq`] |
//! | §2.3 communication claim | [`experiments::comm_contrast`] |
//!
//! The `repro` binary runs them all and writes paper-style tables under
//! `results/`.

pub mod datasets;
pub mod experiments;
pub mod params;
pub mod queries;
pub mod report;

pub use datasets::{Dataset, DatasetId, Scale};
pub use params::Params;
pub use queries::QueryGenerator;
pub use report::Table;
