//! `repro` — regenerate every table and figure of the paper.
//!
//! Usage:
//! ```text
//! repro [--scale paper|bench|smoke] [--exp <id>[,<id>...]] [--out DIR]
//!
//! ids: tab1 tab2 tab3 fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14 fig15
//!      fig16 fig17 comm ablation throughput overload parallel transport
//!      replication layout hedging topk all (default: all)
//! ```
//!
//! Results are printed and written under `--out` (default `results/`) as
//! aligned text and TSV.

use std::collections::HashSet;
use std::time::Instant;

use disks_bench::datasets::{load, DatasetId, Scale};
use disks_bench::experiments as exp;
use disks_bench::params::{parameter_table, Params};
use disks_bench::report::Table;

struct Args {
    scale: Scale,
    exps: HashSet<String>,
    out: String,
}

fn parse_args() -> Args {
    let mut scale = Scale::Paper;
    let mut exps: HashSet<String> = HashSet::new();
    let mut out = "results".to_string();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--scale" => {
                i += 1;
                scale = match argv.get(i).map(String::as_str) {
                    Some("paper") => Scale::Paper,
                    Some("bench") => Scale::Bench,
                    Some("smoke") => Scale::Smoke,
                    other => {
                        eprintln!("unknown scale {other:?}; expected paper|bench|smoke");
                        std::process::exit(2);
                    }
                };
            }
            "--exp" => {
                i += 1;
                let list = argv.get(i).cloned().unwrap_or_default();
                exps.extend(list.split(',').map(|s| s.trim().to_lowercase()));
            }
            "--out" => {
                i += 1;
                out = argv.get(i).cloned().unwrap_or(out);
            }
            "--help" | "-h" => {
                println!("repro [--scale paper|bench|smoke] [--exp tab1,fig7,...|all] [--out DIR]");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if exps.is_empty() {
        exps.insert("all".into());
    }
    Args { scale, exps, out }
}

fn main() {
    let args = parse_args();
    let wants = |id: &str| args.exps.contains("all") || args.exps.contains(id);
    let started = Instant::now();
    let mut emitted: Vec<(String, Table)> = Vec::new();
    let mut emit = |name: &str, table: Table| {
        println!("{table}");
        emitted.push((name.to_string(), table));
    };

    println!(
        "disks repro — scale {:?}; experiments: {:?}\n",
        args.scale,
        args.exps.iter().collect::<Vec<_>>()
    );

    // Parameters scale with the run scale: smoke/bench use fewer fragments
    // (the datasets are small) and fewer queries per point.
    let params = match args.scale {
        Scale::Paper => Params::default(),
        Scale::Bench => Params { num_fragments: 8, queries_per_point: 5, ..Params::default() },
        Scale::Smoke => {
            Params { num_fragments: 4, queries_per_point: 2, num_keywords: 3, ..Params::default() }
        }
    };

    if wants("tab1") {
        emit("tab1_datasets", exp::tab1_datasets(args.scale));
    }
    if wants("tab2") {
        emit("tab2_parameters", parameter_table());
    }

    // Lazily generated datasets (each generation is deterministic).
    let need_bri = ["fig7", "fig10", "fig12", "fig14"].iter().any(|e| wants(e));
    let need_aus = [
        "fig7",
        "fig8",
        "tab3",
        "fig9",
        "fig11",
        "fig13",
        "fig15",
        "fig16",
        "fig17",
        "comm",
        "ablation",
        "throughput",
        "overload",
        "parallel",
        "transport",
        "replication",
        "layout",
        "hedging",
        "topk",
    ]
    .iter()
    .any(|e| wants(e));
    let bri = need_bri.then(|| {
        let t = Instant::now();
        let ds = load(DatasetId::Bri, args.scale);
        println!(
            "[gen] BRI-like: {} nodes, {} edges ({:?})\n",
            ds.net.num_nodes(),
            ds.net.num_edges(),
            t.elapsed()
        );
        ds
    });
    let aus = need_aus.then(|| {
        let t = Instant::now();
        let ds = load(DatasetId::Aus, args.scale);
        println!(
            "[gen] AUS-like: {} nodes, {} edges ({:?})\n",
            ds.net.num_nodes(),
            ds.net.num_edges(),
            t.elapsed()
        );
        ds
    });

    if wants("fig7") {
        if let Some(ds) = &bri {
            emit("fig7a_index_size_bri", exp::fig7_index_size(ds));
        }
        if let Some(ds) = &aus {
            emit("fig7b_index_size_aus", exp::fig7_index_size(ds));
        }
    }
    if wants("fig8") {
        if let Some(ds) = &aus {
            emit(
                "fig8_index_size_unbounded_aus",
                exp::fig8_index_size_unbounded(ds, params.num_fragments),
            );
        }
    }
    if wants("tab3") {
        if let Some(ds) = &aus {
            emit("tab3_indexing_time_aus", exp::tab3_indexing_time(ds));
        }
    }
    if wants("fig9") {
        if let Some(ds) = &aus {
            emit("fig9_query_time_vs_maxr_aus", exp::fig9_query_time_vs_maxr(ds, &params));
        }
    }
    if wants("fig10") {
        if let Some(ds) = &bri {
            emit("fig10_keywords_bri", exp::fig10_11_keywords(ds, &params));
        }
    }
    if wants("fig11") {
        if let Some(ds) = &aus {
            emit("fig11_keywords_aus", exp::fig10_11_keywords(ds, &params));
        }
    }
    if wants("fig12") {
        if let Some(ds) = &bri {
            emit("fig12_fragments_bri", exp::fig12_13_fragments(ds, &params));
        }
    }
    if wants("fig13") {
        if let Some(ds) = &aus {
            emit("fig13_fragments_aus", exp::fig12_13_fragments(ds, &params));
        }
    }
    if wants("fig14") {
        if let Some(ds) = &bri {
            emit("fig14_radius_bri", exp::fig14_15_radius(ds, &params));
        }
    }
    if wants("fig15") {
        if let Some(ds) = &aus {
            emit("fig15_radius_aus", exp::fig14_15_radius(ds, &params));
        }
    }
    if wants("fig16") {
        if let Some(ds) = &aus {
            emit("fig16_dfunctions_aus", exp::fig16_dfunctions(ds, &params));
        }
    }
    if wants("fig17") {
        if let Some(ds) = &aus {
            emit("fig17_rkq_aus", exp::fig17_rkq(ds, &params));
        }
    }
    if wants("comm") {
        if let Some(ds) = &aus {
            emit("comm_contrast_aus", exp::comm_contrast(ds, &params));
        }
    }
    if wants("ablation") {
        if let Some(ds) = &aus {
            emit("ablation_minimality_aus", exp::ablation_minimality(ds, &params));
            emit("ablation_partitioner_aus", exp::ablation_partitioner(ds, &params));
            emit("ablation_kw_aggregation_aus", exp::ablation_keyword_aggregation(ds, &params));
        }
    }
    if wants("throughput") {
        if let Some(ds) = &aus {
            let (table, summary) = exp::throughput(ds, &params);
            emit("throughput_aus", table);
            let path = std::path::Path::new(&args.out).join("BENCH_throughput.json");
            if let Err(e) = std::fs::create_dir_all(&args.out)
                .and_then(|()| std::fs::write(&path, summary.to_json()))
            {
                eprintln!("failed to save BENCH_throughput.json: {e}");
            } else {
                println!("[json] {} ({} machine points)", path.display(), summary.points.len());
            }
            // Batched dispatch headline: uncached pipelined speedup from
            // cross-query super-plans (window 16) over the unbatched path.
            for p in &summary.points {
                if p.qps_uncached > 0.0 {
                    println!(
                        "[batch] machines={}: {:.0} -> {:.0} q/s uncached, {:.2}x speedup",
                        p.machines,
                        p.qps_uncached,
                        p.qps_batched,
                        p.qps_batched / p.qps_uncached
                    );
                }
                // Adaptive streaming dispatch vs the best fixed window
                // (w=64): throughput ratio and the dispatch-byte savings
                // from slot-reference elision in steady state.
                if let Some(w64) = p.batch_sweep.iter().find(|b| b.window == 64) {
                    let a = &p.adaptive;
                    if w64.qps > 0.0 && w64.c2w_bytes_per_query > 0.0 {
                        println!(
                            "[adaptive] machines={}: {:.0} q/s ({:.2}x of w=64), \
                             c2w {:.0} -> {:.0} B/query ({:.0}% saved), p99 {}us, nacks={}",
                            p.machines,
                            a.qps,
                            a.qps / w64.qps,
                            w64.c2w_bytes_per_query,
                            a.c2w_bytes_per_query,
                            (1.0 - a.c2w_bytes_per_query / w64.c2w_bytes_per_query) * 100.0,
                            a.p99_micros,
                            a.slot_nacks
                        );
                    }
                }
                // Health-plane recovery over this point's clusters (only
                // nonzero under DISKS_HEDGE / DISKS_QUARANTINE lanes).
                if p.reroutes + p.hedges + p.quarantines > 0 {
                    println!(
                        "[recovery] machines={}: reroutes={}, hedges={} (wins {}), quarantines={}",
                        p.machines, p.reroutes, p.hedges, p.hedge_wins, p.quarantines
                    );
                }
            }
            println!();
        }
    }
    if wants("overload") {
        if let Some(ds) = &aus {
            let (table, summary) = exp::overload(ds, &params);
            emit("overload_aus", table);
            let path = std::path::Path::new(&args.out).join("BENCH_overload.json");
            if let Err(e) = std::fs::create_dir_all(&args.out)
                .and_then(|()| std::fs::write(&path, summary.to_json()))
            {
                eprintln!("failed to save BENCH_overload.json: {e}");
            } else {
                println!("[json] {} ({} load points)", path.display(), summary.points.len());
            }
            // Saturation headline: goodput at 4x offered load, shedding on
            // vs off — the shed knee the overload lane tracks across PRs.
            if let (Some(p1), Some(p4)) = (summary.points.first(), summary.points.last()) {
                println!(
                    "[overload] 4x load: {:.0} q/s goodput shedding on (peak {:.0}), \
                     {:.0} q/s off, shed rate {:.0}%",
                    p4.goodput_on,
                    p1.goodput_on.max(p4.goodput_on),
                    p4.goodput_off,
                    100.0 * p4.shed_rate_on
                );
            }
            // Cost-model calibration read-out (observational, no behavior
            // change): what one Theorem 5 cost unit costs in observed
            // wall-clock at 1×, and the DISKS_COST_LIMIT today's p99 tail
            // implies — next to the configured budget for comparison.
            if summary.implied_cost_limit > 0 {
                println!(
                    "[overload] calibration: {:.3} us per cost unit observed; \
                     implied DISKS_COST_LIMIT ~= {} (configured {})",
                    summary.service_micros_per_cost, summary.implied_cost_limit, summary.cost_limit
                );
            }
            // Health-plane recovery across the sweep (only nonzero under
            // DISKS_HEDGE / DISKS_QUARANTINE lanes).
            let (rt, rr, hg, hw, qr) = summary.points.iter().fold((0, 0, 0, 0, 0), |a, p| {
                (
                    a.0 + p.retries,
                    a.1 + p.reroutes,
                    a.2 + p.hedges,
                    a.3 + p.hedge_wins,
                    a.4 + p.quarantines,
                )
            });
            if rt + rr + hg + qr > 0 {
                println!(
                    "[recovery] retries={rt}, reroutes={rr}, hedges={hg} (wins {hw}), \
                     quarantines={qr}"
                );
            }
            println!();
        }
    }
    if wants("parallel") {
        if let Some(ds) = &aus {
            let (table, summary) = exp::parallel(ds, &params);
            emit("parallel_aus", table);
            let path = std::path::Path::new(&args.out).join("BENCH_parallel.json");
            if let Err(e) = std::fs::create_dir_all(&args.out)
                .and_then(|()| std::fs::write(&path, summary.to_json()))
            {
                eprintln!("failed to save BENCH_parallel.json: {e}");
            } else {
                println!("[json] {} ({} thread points)", path.display(), summary.points.len());
            }
            // Pool headline: compute scaling from intra-worker parallel slot
            // evaluation, with the value plane asserted identical to serial
            // inside the experiment. The 2x acceptance bound at 4 threads
            // only binds on hosts with >= 4 cores (asserted in-experiment).
            if let (Some(s2), Some(s4)) = (summary.speedup_at(2), summary.speedup_at(4)) {
                println!(
                    "[parallel] {} cores: speedup {:.2}x at 2 threads, {:.2}x at 4 \
                     (answers/frames/bytes identical to serial)",
                    summary.host_cores, s2, s4
                );
            }
            println!();
        }
    }
    if wants("transport") {
        if let Some(ds) = &aus {
            let (table, summary) = exp::transport(ds, &params);
            emit("transport_aus", table);
            let path = std::path::Path::new(&args.out).join("BENCH_transport.json");
            if let Err(e) = std::fs::create_dir_all(&args.out)
                .and_then(|()| std::fs::write(&path, summary.to_json()))
            {
                eprintln!("failed to save BENCH_transport.json: {e}");
            } else {
                println!("[json] {} ({} points)", path.display(), summary.points.len());
            }
            // Socket-cost headline: TCP throughput as a fraction of the
            // in-process channel links, per dispatch mode.
            for mode in ["window16", "adaptive"] {
                if let Some(ratio) = summary.tcp_ratio(mode) {
                    println!(
                        "[transport] {mode}: tcp at {:.0}% of channel throughput",
                        ratio * 100.0
                    );
                }
            }
            println!();
        }
    }
    if wants("replication") {
        if let Some(ds) = &aus {
            let (table, summary) = exp::replication(ds, &params);
            emit("replication_aus", table);
            let path = std::path::Path::new(&args.out).join("BENCH_replication.json");
            if let Err(e) = std::fs::create_dir_all(&args.out)
                .and_then(|()| std::fs::write(&path, summary.to_json()))
            {
                eprintln!("failed to save BENCH_replication.json: {e}");
            } else {
                println!("[json] {} ({} replica points)", path.display(), summary.points.len());
            }
            // Replication headline: goodput gain from spreading the hottest
            // fragment across replicas, and the Theorem 6 unbalance trend.
            if let (Some(g0), Some(g2)) = (summary.goodput_at(0), summary.goodput_at(2)) {
                if g0 > 0.0 {
                    println!(
                        "[replication] hot fragment {} ({:.0}% of compute): \
                         {:.0} -> {:.0} q/s modeled goodput at 2 replicas ({:.2}x)",
                        summary.hot_fragment,
                        100.0 * summary.hot_share,
                        g0,
                        g2,
                        g2 / g0
                    );
                }
            }
            let us: Vec<String> =
                summary.points.iter().map(|p| format!("{:.2}", p.unbalance)).collect();
            println!("[replication] unbalance U by replicas: {}", us.join(" -> "));
            println!();
        }
    }
    if wants("layout") {
        if let Some(ds) = &aus {
            let (table, summary) = exp::layout(ds, &params);
            emit("layout_aus", table);
            let path = std::path::Path::new(&args.out).join("BENCH_layout.json");
            if let Err(e) = std::fs::create_dir_all(&args.out)
                .and_then(|()| std::fs::write(&path, summary.to_json()))
            {
                eprintln!("failed to save BENCH_layout.json: {e}");
            } else {
                println!("[json] {} ({} arms)", path.display(), summary.arms.len());
            }
            // Layout headline: what the observed workload is worth when it
            // drives partitioning, the bi-level split, placement, and cache
            // admission at once.
            if let (Some(b), Some(w), Some(x)) =
                (summary.arm("blind"), summary.arm("workload"), summary.speedup())
            {
                println!(
                    "[layout] workload-aware vs blind: {:.0} -> {:.0} q/s ({:.2}x), \
                     wcut {} -> {}, hit rate {:.0}% -> {:.0}%, U {:.2} -> {:.2}",
                    b.goodput,
                    w.goodput,
                    x,
                    b.weighted_cut,
                    w.weighted_cut,
                    100.0 * b.cache_hit_rate,
                    100.0 * w.cache_hit_rate,
                    b.unbalance,
                    w.unbalance
                );
            }
            println!(
                "[layout] bi-level split: static {} -> observed {}",
                summary.static_max_r, summary.observed_split_r
            );
            println!();
        }
    }
    if wants("hedging") {
        if let Some(ds) = &aus {
            let (table, summary) = exp::hedging(ds, &params);
            emit("hedging_aus", table);
            let path = std::path::Path::new(&args.out).join("BENCH_hedging.json");
            if let Err(e) = std::fs::create_dir_all(&args.out)
                .and_then(|()| std::fs::write(&path, summary.to_json()))
            {
                eprintln!("failed to save BENCH_hedging.json: {e}");
            } else {
                println!("[json] {} ({} arms)", path.display(), summary.points.len());
            }
            // Hedging headline — the acceptance criterion: with ~1% of
            // worker frames stalled ≥10× typical service time, adaptive
            // hedging cuts end-to-end p99 to ≤ 0.5× of hedging-off on
            // the same stream (answers oracle-exact, ledger closed —
            // both asserted inside the experiment).
            if let (Some(off), Some(adaptive), Some(ratio)) =
                (summary.point("off"), summary.point("adaptive"), summary.p99_ratio())
            {
                println!(
                    "[hedging] 1/{} frames delayed {}ms: p99 {}us -> {}us ({:.2}x), \
                     hedges={} (wins {}), retries={}",
                    summary.fault_every,
                    summary.delay_ms,
                    off.p99_micros,
                    adaptive.p99_micros,
                    ratio,
                    adaptive.hedges,
                    adaptive.hedge_wins,
                    adaptive.retries
                );
                if ratio > 0.5 {
                    eprintln!(
                        "[hedging] WARNING: p99 ratio {ratio:.2} above the 0.5 acceptance bound"
                    );
                }
            }
            println!();
        }
    }
    if wants("topk") {
        if let Some(ds) = &aus {
            emit("topk_extension_aus", exp::topk_extension(ds, &params));
        }
    }

    for (name, table) in &emitted {
        if let Err(e) = table.save(&args.out, name) {
            eprintln!("failed to save {name}: {e}");
        }
    }
    println!(
        "done: {} artifact(s) written to {}/ in {:?}",
        emitted.len(),
        args.out,
        started.elapsed()
    );
}
