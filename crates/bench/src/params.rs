//! The paper's parameter grid (Table 2). Bold values in the paper are the
//! defaults used when a factor is not the one being varied.

use crate::report::Table;

/// Experiment parameters, paper Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Params {
    /// `maxR = λ·ē` factor λ (default 40).
    pub max_r_factor: u64,
    /// Number of query keywords (default 7).
    pub num_keywords: usize,
    /// Number of fragments = machines (default 16).
    pub num_fragments: usize,
    /// Query radius as a λ-style factor of the average edge length; the
    /// paper's default is `r = maxR` (= 40ē).
    pub r_factor: u64,
    /// Queries per measured point.
    pub queries_per_point: usize,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            max_r_factor: 40,
            num_keywords: 7,
            num_fragments: 16,
            r_factor: 40,
            queries_per_point: 10,
        }
    }
}

impl Params {
    /// Table 2's maxR sweep (×ē).
    pub const MAX_R_FACTORS: [u64; 4] = [5, 10, 20, 40];
    /// Table 2's #keywords sweep.
    pub const KEYWORD_COUNTS: [usize; 5] = [3, 5, 7, 9, 11];
    /// Table 2's #fragments sweep.
    pub const FRAGMENT_COUNTS: [usize; 5] = [2, 4, 8, 12, 16];
    /// Table 2's r sweep as fractions of maxR: maxR/4, maxR/3, maxR/2, maxR
    /// (plus 40ē = maxR at the default λ).
    pub const R_DIVISORS: [u64; 4] = [4, 3, 2, 1];

    /// Resolve `maxR` in weight units for a network with average edge
    /// weight `avg_edge`.
    pub fn max_r(&self, avg_edge: u64) -> u64 {
        self.max_r_factor * avg_edge
    }

    /// Resolve the query radius in weight units.
    pub fn r(&self, avg_edge: u64) -> u64 {
        self.r_factor * avg_edge
    }
}

/// Render the paper's Table 2.
pub fn parameter_table() -> Table {
    let mut t = Table::new(
        "Table 2: Parameters (defaults in [brackets])",
        vec!["parameter".into(), "values".into()],
    );
    t.push(vec!["maxR / avg edge".into(), "5, 10, 20, [40]".into()]);
    t.push(vec!["#keywords".into(), "3, 5, [7], 9, 11".into()]);
    t.push(vec!["#fragments".into(), "2, 4, 8, 12, [16]".into()]);
    t.push(vec!["r".into(), "40e, [maxR], maxR/2, maxR/3, maxR/4".into()]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_bold_values() {
        let p = Params::default();
        assert_eq!(p.max_r_factor, 40);
        assert_eq!(p.num_keywords, 7);
        assert_eq!(p.num_fragments, 16);
        assert_eq!(p.max_r(1200), 48_000);
        assert_eq!(p.r(1200), 48_000);
    }

    #[test]
    fn sweeps_match_table2() {
        assert_eq!(Params::MAX_R_FACTORS, [5, 10, 20, 40]);
        assert_eq!(Params::KEYWORD_COUNTS, [3, 5, 7, 9, 11]);
        assert_eq!(Params::FRAGMENT_COUNTS, [2, 4, 8, 12, 16]);
    }

    #[test]
    fn parameter_table_renders() {
        let t = parameter_table();
        let s = t.to_string();
        assert!(s.contains("maxR"));
        assert!(s.contains("[16]"));
    }
}
