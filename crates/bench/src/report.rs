//! Table rendering and result persistence for the experiment harness.

use std::fmt;
use std::path::Path;

/// A simple aligned text table, the output unit of every experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, headers: Vec<String>) -> Self {
        Table { title: title.into(), headers, rows: Vec::new() }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the row width does not match the header width.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width must match headers");
        self.rows.push(row);
    }

    /// Tab-separated form for machine consumption.
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join("\t"));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join("\t"));
            out.push('\n');
        }
        out
    }

    /// Write both the aligned and TSV forms under `dir` as
    /// `<name>.txt` / `<name>.tsv`.
    pub fn save(&self, dir: impl AsRef<Path>, name: &str) -> std::io::Result<()> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(format!("{name}.txt")), self.to_string())?;
        std::fs::write(dir.join(format!("{name}.tsv")), self.to_tsv())?;
        Ok(())
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "{}", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut rendered = Vec::with_capacity(cells.len());
            for (i, cell) in cells.iter().enumerate() {
                rendered.push(format!("{cell:>width$}", width = widths[i]));
            }
            writeln!(f, "  {}", rendered.join("  "))
        };
        line(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        writeln!(f, "  {}", "-".repeat(total))?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// Format a `Duration` in adaptive units.
pub fn fmt_duration(d: std::time::Duration) -> String {
    let micros = d.as_micros();
    if micros < 1_000 {
        format!("{micros}us")
    } else if micros < 1_000_000 {
        format!("{:.2}ms", micros as f64 / 1_000.0)
    } else {
        format!("{:.2}s", micros as f64 / 1_000_000.0)
    }
}

/// Format bytes in adaptive units.
pub fn fmt_bytes(b: u64) -> String {
    if b < 1024 {
        format!("{b}B")
    } else if b < 1024 * 1024 {
        format!("{:.1}KB", b as f64 / 1024.0)
    } else {
        format!("{:.2}MB", b as f64 / (1024.0 * 1024.0))
    }
}

/// Mean of a slice of durations.
pub fn mean_duration(xs: &[std::time::Duration]) -> std::time::Duration {
    if xs.is_empty() {
        return std::time::Duration::ZERO;
    }
    let total: u128 = xs.iter().map(|d| d.as_nanos()).sum();
    std::time::Duration::from_nanos((total / xs.len() as u128) as u64)
}

/// Median of a slice of durations — robust against one-off scheduling
/// stragglers, which matters because the distributed response time is a
/// max over machines and inherits any single outlier.
pub fn median_duration(xs: &[std::time::Duration]) -> std::time::Duration {
    if xs.is_empty() {
        return std::time::Duration::ZERO;
    }
    let mut sorted: Vec<std::time::Duration> = xs.to_vec();
    sorted.sort_unstable();
    sorted[sorted.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", vec!["a".into(), "long_header".into()]);
        t.push(vec!["1".into(), "2".into()]);
        t.push(vec!["333".into(), "4444".into()]);
        let s = t.to_string();
        assert!(s.contains("demo"));
        assert!(s.lines().count() >= 4);
        let tsv = t.to_tsv();
        assert_eq!(tsv.lines().count(), 3);
        assert!(tsv.starts_with("a\tlong_header"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = Table::new("demo", vec!["a".into()]);
        t.push(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn save_writes_both_forms() {
        let mut t = Table::new("demo", vec!["x".into()]);
        t.push(vec!["1".into()]);
        let dir = std::env::temp_dir().join(format!("disks-report-{}", std::process::id()));
        t.save(&dir, "demo").unwrap();
        assert!(dir.join("demo.txt").exists());
        assert!(dir.join("demo.tsv").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_duration(Duration::from_micros(10)), "10us");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.00ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
        assert_eq!(fmt_bytes(10), "10B");
        assert_eq!(fmt_bytes(2048), "2.0KB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.00MB");
        assert_eq!(
            mean_duration(&[Duration::from_secs(1), Duration::from_secs(3)]),
            Duration::from_secs(2)
        );
        assert_eq!(mean_duration(&[]), Duration::ZERO);
        assert_eq!(
            median_duration(&[
                Duration::from_secs(1),
                Duration::from_secs(100),
                Duration::from_secs(2)
            ]),
            Duration::from_secs(2)
        );
        assert_eq!(median_duration(&[]), Duration::ZERO);
    }
}
