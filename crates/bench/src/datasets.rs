//! Dataset presets substituting the paper's OSM extracts (Table 1).
//!
//! The paper's BRI (Britain) and AUS (Australia) extracts are reproduced as
//! scaled synthetic analogues that keep the ratios the experiments are
//! sensitive to (object fraction, keywords-per-node, degree, skew); see
//! `DESIGN.md` §4. Three scales are provided so the same experiment code
//! drives the full reproduction, Criterion microbenches, and smoke tests.

use disks_roadnet::generator::GridNetworkConfig;
use disks_roadnet::RoadNetwork;

/// Which road network to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetId {
    /// Britain-like: the larger dataset (paper: 3.76 M nodes, 8 % objects).
    Bri,
    /// Australia-like: the smaller dataset (paper: 1.22 M nodes, 5.7 %).
    Aus,
}

impl DatasetId {
    pub fn name(self) -> &'static str {
        match self {
            DatasetId::Bri => "BRI",
            DatasetId::Aus => "AUS",
        }
    }
}

/// Generation scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Full reproduction scale (~115 k / ~40 k junctions) — used by the
    /// `repro` binary.
    Paper,
    /// Criterion scale (~1/16 the node count) — keeps benches minutes, not
    /// hours, while preserving all ratios.
    Bench,
    /// Smoke scale for tests.
    Smoke,
}

/// A generated dataset.
pub struct Dataset {
    pub id: DatasetId,
    pub scale: Scale,
    pub net: RoadNetwork,
}

/// Deterministic generation seed per dataset (fixed so every experiment in a
/// run — and across runs — sees the same network).
fn seed(id: DatasetId) -> u64 {
    match id {
        DatasetId::Bri => 0xB121,
        DatasetId::Aus => 0xA052,
    }
}

/// Generator config for a dataset at a scale.
pub fn config(id: DatasetId, scale: Scale) -> GridNetworkConfig {
    let base = match id {
        DatasetId::Bri => GridNetworkConfig::bri_like(seed(id)),
        DatasetId::Aus => GridNetworkConfig::aus_like(seed(id)),
    };
    match scale {
        Scale::Paper => base,
        Scale::Bench => GridNetworkConfig {
            width: base.width / 4,
            height: base.height / 4,
            vocab_size: (base.vocab_size / 8).max(64),
            lakes: base.lakes / 2,
            cluster_grid: (base.cluster_grid / 2).max(2),
            cluster_pool: (base.cluster_pool / 2).max(8),
            ..base
        },
        Scale::Smoke => GridNetworkConfig {
            width: 24,
            height: 24,
            vocab_size: 48,
            lakes: 1,
            cluster_grid: 3,
            cluster_pool: 10,
            ..base
        },
    }
}

/// Generate a dataset.
pub fn load(id: DatasetId, scale: Scale) -> Dataset {
    let net = config(id, scale).generate();
    Dataset { id, scale, net }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_datasets_have_paper_ratios() {
        let bri = load(DatasetId::Bri, Scale::Smoke);
        let aus = load(DatasetId::Aus, Scale::Smoke);
        let bri_frac = bri.net.num_objects() as f64 / bri.net.num_nodes() as f64;
        let aus_frac = aus.net.num_objects() as f64 / aus.net.num_nodes() as f64;
        // BRI has the denser object population (8% vs 5.7% of junctions).
        assert!(bri_frac > aus_frac, "bri {bri_frac} vs aus {aus_frac}");
        assert!(bri.net.is_connected() && aus.net.is_connected());
    }

    #[test]
    fn scales_order_by_size() {
        let smoke = load(DatasetId::Aus, Scale::Smoke);
        let bench = load(DatasetId::Aus, Scale::Bench);
        assert!(bench.net.num_nodes() > smoke.net.num_nodes());
    }

    #[test]
    fn generation_is_deterministic_across_calls() {
        let a = load(DatasetId::Aus, Scale::Smoke);
        let b = load(DatasetId::Aus, Scale::Smoke);
        assert_eq!(a.net.num_nodes(), b.net.num_nodes());
        assert_eq!(a.net.num_edges(), b.net.num_edges());
    }
}
