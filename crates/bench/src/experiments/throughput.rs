//! Throughput experiment — the introduction's second motivation: "it will
//! improve the throughput of query processing".
//!
//! A batch of SGKQs is pushed through the threaded cluster *pipelined*
//! (all requests dispatched before gathering), so worker machines drain
//! their queues concurrently. Throughput = queries / batch wall-clock, per
//! machine count — measured twice per point, with the per-worker coverage
//! cache warm and with it disabled, so the cache's contribution is its own
//! column. Per-query latency percentiles (p50/p99) come from sequential
//! warm runs. Besides the [`Table`], the experiment returns a
//! [`ThroughputSummary`] that `repro` serializes to
//! `results/BENCH_throughput.json`.

use disks_cluster::{Cluster, ClusterConfig, NetworkModel};
use disks_core::{build_all_indexes, DFunction, IndexConfig, NpdIndex};
use disks_partition::{MultilevelPartitioner, Partitioner, Partitioning};

use crate::datasets::Dataset;
use crate::params::Params;
use crate::queries::QueryGenerator;
use crate::report::Table;

/// One machine-count measurement of the throughput sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputPoint {
    pub machines: usize,
    /// Pipelined queries/sec with a warm coverage cache.
    pub qps_cached: f64,
    /// Pipelined queries/sec with the cache disabled (budget 0).
    pub qps_uncached: f64,
    /// Cache hit rate over the measured (warm) batch.
    pub cache_hit_rate: f64,
    /// Sequential warm per-query latency percentiles.
    pub p50_micros: u64,
    pub p99_micros: u64,
}

/// Machine-readable summary of the throughput sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputSummary {
    pub dataset: String,
    pub queries: usize,
    pub num_keywords: usize,
    pub points: Vec<ThroughputPoint>,
}

impl ThroughputSummary {
    /// Hand-formatted JSON (the repo carries no serde; the schema is flat
    /// enough that formatting by hand keeps the artifact dependency-free).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"dataset\": \"{}\",\n", self.dataset));
        s.push_str(&format!("  \"queries\": {},\n", self.queries));
        s.push_str(&format!("  \"num_keywords\": {},\n", self.num_keywords));
        s.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            let sep = if i + 1 == self.points.len() { "" } else { "," };
            s.push_str(&format!(
                "    {{\"machines\": {}, \"qps_cached\": {:.1}, \"qps_uncached\": {:.1}, \
                 \"cache_hit_rate\": {:.4}, \"p50_micros\": {}, \"p99_micros\": {}}}{sep}\n",
                p.machines,
                p.qps_cached,
                p.qps_uncached,
                p.cache_hit_rate,
                p.p50_micros,
                p.p99_micros
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

fn build(
    ds: &Dataset,
    partitioning: &Partitioning,
    indexes: Vec<NpdIndex>,
    machines: usize,
    cache_bytes: usize,
) -> Cluster {
    Cluster::build(
        &ds.net,
        partitioning,
        indexes,
        ClusterConfig {
            machines: Some(machines),
            network: NetworkModel::instant(),
            coverage_cache_bytes: cache_bytes,
            ..ClusterConfig::default()
        },
    )
}

/// Pipelined throughput vs number of machines, cached vs cache-disabled.
pub fn throughput(ds: &Dataset, params: &Params) -> (Table, ThroughputSummary) {
    let e = ds.net.avg_edge_weight();
    let max_r = params.max_r(e);
    let r = params.r(e).min(max_r);
    let batch = (params.queries_per_point * 10).max(20);
    let mut gen = QueryGenerator::new(&ds.net, 0x7890);
    let fs: Vec<DFunction> =
        gen.sgkq_batch(batch, params.num_keywords, r).iter().map(|q| q.to_dfunction()).collect();

    let mut t = Table::new(
        format!(
            "Throughput: pipelined SGKQ batch of {} queries (#kw={}), {}",
            fs.len(),
            params.num_keywords,
            ds.id.name()
        ),
        vec![
            "machines".into(),
            "batch wall".into(),
            "q/s cached".into(),
            "q/s uncached".into(),
            "hit rate".into(),
            "p50".into(),
            "p99".into(),
        ],
    );
    let mut summary = ThroughputSummary {
        dataset: ds.id.name().to_string(),
        queries: fs.len(),
        num_keywords: params.num_keywords,
        points: Vec::new(),
    };
    // Fragment count fixed at the default; machines vary (the §5.2
    // fewer-machines-than-fragments schedule kicks in below k).
    let k = params.num_fragments;
    let partitioning = MultilevelPartitioner::default().partition(&ds.net, k);
    let indexes = build_all_indexes(&ds.net, &partitioning, &IndexConfig::with_max_r(max_r));
    for &machines in &[1usize, 2, 4, 8, 16] {
        if machines > k {
            continue;
        }
        // Cached: one warmup batch fills every worker's cache (the Zipf
        // stream repeats (keyword, radius) slots), then the measured batch
        // runs warm and its counter delta yields the hit rate.
        let cached = build(ds, &partitioning, indexes.clone(), machines, 64 << 20);
        let _ = cached.run_pipelined(&fs).expect("warmup batch");
        let before = cached.cache_counters();
        let (results, elapsed) = cached.run_pipelined(&fs).expect("cached batch");
        assert_eq!(results.len(), fs.len());
        let delta = cached.cache_counters().since(&before);
        let qps_cached = fs.len() as f64 / elapsed.as_secs_f64().max(1e-9);
        // Sequential warm runs for per-query latency percentiles.
        let mut lat: Vec<u64> = fs
            .iter()
            .map(|f| cached.run(f).expect("latency run").stats.wall_time.as_micros() as u64)
            .collect();
        lat.sort_unstable();
        let p50 = lat[lat.len() / 2];
        let p99 = lat[(lat.len() * 99 / 100).min(lat.len() - 1)];
        cached.shutdown();

        // Uncached: same warmup (queue effects), zero cache budget.
        let uncached = build(ds, &partitioning, indexes.clone(), machines, 0);
        let _ = uncached.run_pipelined(&fs).expect("uncached warmup");
        let (results, elapsed_u) = uncached.run_pipelined(&fs).expect("uncached batch");
        assert_eq!(results.len(), fs.len());
        let qps_uncached = fs.len() as f64 / elapsed_u.as_secs_f64().max(1e-9);
        uncached.shutdown();

        t.push(vec![
            machines.to_string(),
            crate::report::fmt_duration(elapsed),
            format!("{qps_cached:.0}"),
            format!("{qps_uncached:.0}"),
            format!("{:.1}%", delta.hit_rate() * 100.0),
            format!("{p50}us"),
            format!("{p99}us"),
        ]);
        summary.points.push(ThroughputPoint {
            machines,
            qps_cached,
            qps_uncached,
            cache_hit_rate: delta.hit_rate(),
            p50_micros: p50,
            p99_micros: p99,
        });
    }
    (t, summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{load, DatasetId, Scale};

    #[test]
    fn throughput_sweep_reports_cache_and_latency() {
        let ds = load(DatasetId::Aus, Scale::Smoke);
        let params =
            Params { num_fragments: 4, queries_per_point: 2, num_keywords: 3, ..Params::default() };
        let (t, summary) = throughput(&ds, &params);
        assert!(t.rows.len() >= 3); // 1, 2, 4 machines
        assert_eq!(t.rows.len(), summary.points.len());
        for p in &summary.points {
            assert!(p.qps_cached > 0.0);
            assert!(p.qps_uncached > 0.0);
            // The measured batch replays the warmup stream, so a warm cache
            // must serve well over half the lookups.
            assert!(p.cache_hit_rate > 0.5, "hit rate {} too low", p.cache_hit_rate);
            assert!(p.p50_micros <= p.p99_micros);
        }
        let json = summary.to_json();
        assert!(json.contains("\"qps_cached\""));
        assert!(json.contains("\"cache_hit_rate\""));
        assert!(json.trim_start().starts_with('{') && json.trim_end().ends_with('}'));
    }
}
