//! Throughput experiment — the introduction's second motivation: "it will
//! improve the throughput of query processing".
//!
//! A batch of SGKQs is pushed through the threaded cluster *pipelined*
//! (all requests dispatched before gathering), so worker machines drain
//! their queues concurrently. Throughput = queries / batch wall-clock, per
//! machine count — measured with the per-worker coverage cache warm, with
//! it disabled, and with cross-query batched dispatch
//! ([`ClusterConfig::batch_window`]) over the uncached cluster, so the
//! cache's and the batching layer's contributions are separate columns. A
//! batch-size sweep (windows 1/4/16/64) additionally records
//! frames-per-query-per-worker and bytes-per-query from the link counters.
//! Per-query latency percentiles (p50/p99) come from sequential warm runs.
//! Besides the [`Table`], the experiment returns a [`ThroughputSummary`]
//! that `repro` serializes to `results/BENCH_throughput.json`.

use disks_cluster::message::EVAL_HIST_BUCKETS;
use disks_cluster::{Cluster, ClusterConfig, NetworkModel, RecoveryCounters};
use disks_core::{build_all_indexes, DFunction, IndexConfig, NpdIndex};
use disks_partition::{MultilevelPartitioner, Partitioner, Partitioning};

use crate::datasets::Dataset;
use crate::params::Params;
use crate::queries::QueryGenerator;
use crate::report::Table;

/// The batch window the headline `qps_batched` column is measured at.
const HEADLINE_WINDOW: usize = 16;

/// Windows swept for the frames/bytes-per-query columns. Window 1 is the
/// unbatched baseline (one `Evaluate` frame per query per worker).
const SWEEP_WINDOWS: [usize; 4] = [1, 4, 16, 64];

/// Window-trace entries kept in the JSON artifact per machine point.
const TRACE_LIMIT: usize = 64;

/// One batch-window measurement over the uncached cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchSweepPoint {
    pub window: usize,
    /// Pipelined queries/sec at this window, cache disabled.
    pub qps: f64,
    /// Coordinator→worker frames per query per worker over the measured
    /// batch — `ceil(n/window)·machines / (n·machines) = ceil(n/window)/n`.
    pub frames_per_query_per_worker: f64,
    /// Total link bytes (both directions) per query over the measured batch.
    pub bytes_per_query: f64,
    /// Coordinator→worker (dispatch) bytes per query over the measured
    /// batch — the side slot-reference elision shrinks.
    pub c2w_bytes_per_query: f64,
    /// Per-query *service* latency percentiles over the measured batch
    /// (dispatch → last fragment response): what batching costs the queries
    /// held inside a window.
    pub p50_micros: u64,
    pub p99_micros: u64,
}

/// The adaptive streaming dispatch row at one machine count
/// (`DISKS_BATCH=adaptive`): AIMD-chosen windows with slot-reference
/// elision, measured over the same warmup + measured batch as the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptivePoint {
    /// Pipelined queries/sec, cache disabled (comparable to the sweep rows).
    pub qps: f64,
    /// Per-query service latency percentiles over the measured batch, on
    /// the same metric as the sweep rows'.
    pub p50_micros: u64,
    pub p99_micros: u64,
    pub frames_per_query_per_worker: f64,
    pub bytes_per_query: f64,
    /// Dispatch-side bytes per query: steady state ships believed-known
    /// slots as 5-byte references instead of full specs.
    pub c2w_bytes_per_query: f64,
    /// `SlotUnknown` NACKs over the measured batch (0 on a fault-free run).
    pub slot_nacks: u64,
    /// Controller window size after each closed window of the measured
    /// batch (trimmed to the first [`TRACE_LIMIT`] entries).
    pub window_trace: Vec<u32>,
}

/// One machine-count measurement of the throughput sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputPoint {
    pub machines: usize,
    /// Pipelined queries/sec with a warm coverage cache (window 1).
    pub qps_cached: f64,
    /// Pipelined queries/sec with the cache disabled (window 1).
    pub qps_uncached: f64,
    /// Pipelined queries/sec with the cache disabled and batched dispatch
    /// at [`HEADLINE_WINDOW`].
    pub qps_batched: f64,
    /// Cache hit rate over the measured (warm) batch.
    pub cache_hit_rate: f64,
    /// Sequential warm per-query latency percentiles.
    pub p50_micros: u64,
    pub p99_micros: u64,
    /// Worker evaluation busy time over the sequential warm runs, summed
    /// across machines (timing plane — serial workers count whole-frame
    /// evaluation, pooled workers sum per-slot job micros; see §6k).
    pub busy_micros: u64,
    /// Per-slot evaluation-latency histogram (log2-µs buckets) over the
    /// same runs. All-zero at `worker_threads = 1` (the serial path skips
    /// per-slot attribution); populated under `DISKS_WORKER_THREADS` lanes.
    pub eval_hist: [u64; EVAL_HIST_BUCKETS],
    /// Lifetime Theorem 6 unbalance factor U of the cached cluster
    /// (max/min observed compute across busy machines; 1.0 = balanced).
    pub unbalance: f64,
    /// Uncached batch-window sweep at this machine count.
    pub batch_sweep: Vec<BatchSweepPoint>,
    /// Adaptive streaming dispatch at this machine count.
    pub adaptive: AdaptivePoint,
    /// Health-plane recovery activity summed over every cluster built at
    /// this machine count: replica reroutes, speculative hedges (and the
    /// subset that won), quarantine transitions. All zero on the default
    /// (health-off) environment — nonzero under `DISKS_HEDGE` /
    /// `DISKS_QUARANTINE` lanes, where this column shows what the health
    /// plane did to the measured numbers.
    pub reroutes: u64,
    pub hedges: u64,
    pub hedge_wins: u64,
    pub quarantines: u64,
}

/// Machine-readable summary of the throughput sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputSummary {
    pub dataset: String,
    pub queries: usize,
    pub num_keywords: usize,
    pub points: Vec<ThroughputPoint>,
}

impl ThroughputSummary {
    /// Hand-formatted JSON (the repo carries no serde; the schema is flat
    /// enough that formatting by hand keeps the artifact dependency-free).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"dataset\": \"{}\",\n", self.dataset));
        s.push_str(&format!("  \"queries\": {},\n", self.queries));
        s.push_str(&format!("  \"num_keywords\": {},\n", self.num_keywords));
        s.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            let sep = if i + 1 == self.points.len() { "" } else { "," };
            s.push_str(&format!(
                "    {{\"machines\": {}, \"qps_cached\": {:.1}, \"qps_uncached\": {:.1}, \
                 \"qps_batched\": {:.1}, \"cache_hit_rate\": {:.4}, \"p50_micros\": {}, \
                 \"p99_micros\": {}, \"busy_micros\": {}, \"eval_hist\": [{}], \
                 \"unbalance\": {:.3}, \"reroutes\": {}, \"hedges\": {}, \
                 \"hedge_wins\": {}, \"quarantines\": {}, \"batch_sweep\": [",
                p.machines,
                p.qps_cached,
                p.qps_uncached,
                p.qps_batched,
                p.cache_hit_rate,
                p.p50_micros,
                p.p99_micros,
                p.busy_micros,
                p.eval_hist.iter().map(u64::to_string).collect::<Vec<_>>().join(", "),
                p.unbalance,
                p.reroutes,
                p.hedges,
                p.hedge_wins,
                p.quarantines
            ));
            for (j, b) in p.batch_sweep.iter().enumerate() {
                let bsep = if j + 1 == p.batch_sweep.len() { "" } else { ", " };
                s.push_str(&format!(
                    "{{\"window\": {}, \"qps\": {:.1}, \"frames_per_query_per_worker\": {:.4}, \
                     \"bytes_per_query\": {:.1}, \"c2w_bytes_per_query\": {:.1}, \
                     \"p50_micros\": {}, \"p99_micros\": {}}}{bsep}",
                    b.window,
                    b.qps,
                    b.frames_per_query_per_worker,
                    b.bytes_per_query,
                    b.c2w_bytes_per_query,
                    b.p50_micros,
                    b.p99_micros
                ));
            }
            let a = &p.adaptive;
            s.push_str(&format!(
                "], \"adaptive\": {{\"qps\": {:.1}, \"p50_micros\": {}, \"p99_micros\": {}, \
                 \"frames_per_query_per_worker\": {:.4}, \"bytes_per_query\": {:.1}, \
                 \"c2w_bytes_per_query\": {:.1}, \"slot_nacks\": {}, \"window_trace\": [{}]}}",
                a.qps,
                a.p50_micros,
                a.p99_micros,
                a.frames_per_query_per_worker,
                a.bytes_per_query,
                a.c2w_bytes_per_query,
                a.slot_nacks,
                a.window_trace.iter().map(u32::to_string).collect::<Vec<_>>().join(", ")
            ));
            s.push_str(&format!("}}{sep}\n"));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

fn build(
    ds: &Dataset,
    partitioning: &Partitioning,
    indexes: Vec<NpdIndex>,
    machines: usize,
    cache_bytes: usize,
    batch_window: usize,
    adaptive: bool,
) -> Cluster {
    Cluster::build(
        &ds.net,
        partitioning,
        indexes,
        ClusterConfig {
            machines: Some(machines),
            network: NetworkModel::instant(),
            coverage_cache_bytes: cache_bytes,
            batch_window,
            // Pinned explicitly so the sweep measures what its column says
            // regardless of DISKS_BATCH* lane variables, and the adaptive
            // row is reproducible across environments. The latency target
            // and time bound are deliberately non-binding: this is a
            // closed-loop benchmark where the full batch is backlogged at
            // dispatch, so every query's service latency includes queue
            // wait behind the whole batch — a binding target would read
            // that as degradation and collapse the window, measuring the
            // guard instead of the controller. The guard itself is pinned
            // by the unit tests on `WindowController`.
            batch_adaptive: adaptive,
            batch_window_ms: std::time::Duration::from_millis(100),
            batch_p99_target: std::time::Duration::from_secs(30),
            ..ClusterConfig::default()
        },
    )
}

/// Link and latency deltas of one measured pipelined batch.
struct Measured {
    qps: f64,
    /// Coordinator→worker frames.
    frames: u64,
    /// Link bytes, both directions.
    bytes: u64,
    /// Coordinator→worker bytes alone.
    c2w: u64,
    /// Per-query service latency percentiles (µs).
    p50_micros: u64,
    p99_micros: u64,
}

/// Measured pipelined batches per point: single batches are noisy on a
/// shared host, so each reported row is the best-throughput run of these.
const MEASURED_REPS: usize = 3;

/// One warmup then [`MEASURED_REPS`] measured pipelined runs, keeping the
/// best-throughput one — the sweep compares windows, not host scheduling.
fn measure(cluster: &Cluster, fs: &[DFunction]) -> Measured {
    let _ = cluster.run_pipelined(fs).expect("warmup batch");
    let mut best: Option<Measured> = None;
    for _ in 0..MEASURED_REPS {
        let m = measure_once(cluster, fs);
        if best.as_ref().is_none_or(|b| m.qps > b.qps) {
            best = Some(m);
        }
    }
    best.expect("at least one measured batch")
}

/// One measured pipelined run; link counters and service latencies are
/// delta'd so they cover exactly this batch.
fn measure_once(cluster: &Cluster, fs: &[DFunction]) -> Measured {
    let _ = cluster.take_service_latencies();
    let (fr_before, _) = cluster.link_message_totals();
    let (c2w_before, w2c_before) = cluster.link_totals();
    let (results, elapsed) = cluster.run_pipelined(fs).expect("measured batch");
    assert_eq!(results.len(), fs.len());
    let (fr_after, _) = cluster.link_message_totals();
    let (c2w_after, w2c_after) = cluster.link_totals();
    let lat: Vec<u64> =
        cluster.take_service_latencies().iter().map(|d| d.as_micros() as u64).collect();
    let (p50_micros, p99_micros) = percentiles(lat);
    let c2w = c2w_after - c2w_before;
    Measured {
        qps: fs.len() as f64 / elapsed.as_secs_f64().max(1e-9),
        frames: fr_after - fr_before,
        bytes: c2w + (w2c_after - w2c_before),
        c2w,
        p50_micros,
        p99_micros,
    }
}

/// (p50, p99) of a latency sample in µs; (0, 0) on an empty sample.
fn percentiles(mut lat: Vec<u64>) -> (u64, u64) {
    if lat.is_empty() {
        return (0, 0);
    }
    lat.sort_unstable();
    (lat[lat.len() / 2], lat[(lat.len() * 99 / 100).min(lat.len() - 1)])
}

/// Pipelined throughput vs number of machines: cached vs cache-disabled vs
/// batched dispatch, plus the uncached batch-window sweep.
pub fn throughput(ds: &Dataset, params: &Params) -> (Table, ThroughputSummary) {
    let e = ds.net.avg_edge_weight();
    let max_r = params.max_r(e);
    let r = params.r(e).min(max_r);
    let batch = (params.queries_per_point * 10).max(20);
    let mut gen = QueryGenerator::new(&ds.net, 0x7890);
    let fs: Vec<DFunction> =
        gen.sgkq_batch(batch, params.num_keywords, r).iter().map(|q| q.to_dfunction()).collect();

    let mut t = Table::new(
        format!(
            "Throughput: pipelined SGKQ batch of {} queries (#kw={}), {}",
            fs.len(),
            params.num_keywords,
            ds.id.name()
        ),
        vec![
            "machines".into(),
            "batch wall".into(),
            "q/s cached".into(),
            "q/s uncached".into(),
            format!("q/s batched(w={HEADLINE_WINDOW})"),
            "q/s adaptive".into(),
            "frames/q/w".into(),
            "hit rate".into(),
            "p50".into(),
            "p99".into(),
            "U".into(),
            "rr/hg/win/quar".into(),
        ],
    );
    let mut summary = ThroughputSummary {
        dataset: ds.id.name().to_string(),
        queries: fs.len(),
        num_keywords: params.num_keywords,
        points: Vec::new(),
    };
    // Fragment count fixed at the default; machines vary (the §5.2
    // fewer-machines-than-fragments schedule kicks in below k).
    let k = params.num_fragments;
    let partitioning = MultilevelPartitioner::default().partition(&ds.net, k);
    let indexes = build_all_indexes(&ds.net, &partitioning, &IndexConfig::with_max_r(max_r));
    for &machines in &[1usize, 2, 4, 8, 16] {
        if machines > k {
            continue;
        }
        // Recovery activity summed over every cluster this point builds
        // (all zero unless a health-plane lane is active).
        let mut recov: Vec<RecoveryCounters> = Vec::new();
        // Cached baseline (window 1 — batching off, so the cache column is
        // the cache's contribution alone): one warmup batch fills every
        // worker's cache (the Zipf stream repeats (keyword, radius) slots),
        // then the measured batch runs warm and its counter delta yields
        // the hit rate.
        let cached = build(ds, &partitioning, indexes.clone(), machines, 64 << 20, 1, false);
        let _ = cached.run_pipelined(&fs).expect("warmup batch");
        let before = cached.cache_counters();
        let (results, elapsed) = cached.run_pipelined(&fs).expect("cached batch");
        assert_eq!(results.len(), fs.len());
        let delta = cached.cache_counters().since(&before);
        let qps_cached = fs.len() as f64 / elapsed.as_secs_f64().max(1e-9);
        // Sequential warm runs for per-query latency percentiles, plus the
        // worker-side timing plane (pool busy time and the per-slot
        // evaluation histogram) summed over the same runs.
        let mut busy_micros = 0u64;
        let mut eval_hist = [0u64; EVAL_HIST_BUCKETS];
        let (p50, p99) = percentiles(
            fs.iter()
                .map(|f| {
                    let o = cached.run(f).expect("latency run");
                    busy_micros += o.stats.total_busy_micros();
                    for (d, s) in eval_hist.iter_mut().zip(o.stats.total_eval_hist()) {
                        *d += s;
                    }
                    o.stats.wall_time.as_micros() as u64
                })
                .collect(),
        );
        let unbalance = cached.unbalance_factor();
        recov.push(cached.recovery_counters());
        cached.shutdown();

        // Uncached batch-window sweep — window 1 is the unbatched baseline,
        // every cluster gets the same warmup (queue effects) and a zero
        // cache budget so batching is the only variable.
        let mut batch_sweep = Vec::new();
        for &window in &SWEEP_WINDOWS {
            let cluster = build(ds, &partitioning, indexes.clone(), machines, 0, window, false);
            let m = measure(&cluster, &fs);
            recov.push(cluster.recovery_counters());
            cluster.shutdown();
            batch_sweep.push(BatchSweepPoint {
                window,
                qps: m.qps,
                frames_per_query_per_worker: m.frames as f64 / (fs.len() * machines) as f64,
                bytes_per_query: m.bytes as f64 / fs.len() as f64,
                c2w_bytes_per_query: m.c2w as f64 / fs.len() as f64,
                p50_micros: m.p50_micros,
                p99_micros: m.p99_micros,
            });
        }
        let qps_uncached = batch_sweep[0].qps;
        let headline = batch_sweep
            .iter()
            .find(|b| b.window == HEADLINE_WINDOW)
            .expect("headline window in sweep")
            .clone();

        // Adaptive streaming dispatch, same protocol as the sweep rows
        // (uncached, warmup + measured batch): the warmup teaches every
        // worker's slot directory, so the measured batch is the steady
        // state — windows chosen by the AIMD controller, believed-known
        // slots shipped as 5-byte references.
        let adaptive = {
            let cluster =
                build(ds, &partitioning, indexes.clone(), machines, 0, HEADLINE_WINDOW, true);
            // Warmup inlined (not `measure`): the AIMD controller grows
            // additively, so one batch is not enough to reach the
            // steady-state window — repeat until the window stops climbing
            // (growth stalls once the remaining backlog can no longer fill
            // a bigger window), bounded for safety. The first batch also
            // teaches every worker's slot directory; the trace snapshot
            // below then isolates the measured batch's controller
            // decisions.
            let _ = cluster.run_pipelined(&fs).expect("warmup batch");
            for _ in 0..8 {
                let before = cluster.window_trace().iter().max().copied();
                let _ = cluster.run_pipelined(&fs).expect("warmup batch");
                if cluster.window_trace().iter().max().copied() == before {
                    break;
                }
            }
            let _ = cluster.take_service_latencies();
            let trace_before = cluster.window_trace().len();
            let mut best: Option<Measured> = None;
            for _ in 0..MEASURED_REPS {
                let m = measure_once(&cluster, &fs);
                if best.as_ref().is_none_or(|b| m.qps > b.qps) {
                    best = Some(m);
                }
            }
            let m = best.expect("at least one measured batch");
            // Repeat batches produce the same steady-state window pattern,
            // so trimming the concatenated trace keeps it representative.
            let mut window_trace = cluster.window_trace().split_off(trace_before);
            window_trace.truncate(TRACE_LIMIT);
            let rc = cluster.recovery_counters();
            let slot_nacks = rc.slot_nacks;
            recov.push(rc);
            cluster.shutdown();
            AdaptivePoint {
                qps: m.qps,
                p50_micros: m.p50_micros,
                p99_micros: m.p99_micros,
                frames_per_query_per_worker: m.frames as f64 / (fs.len() * machines) as f64,
                bytes_per_query: m.bytes as f64 / fs.len() as f64,
                c2w_bytes_per_query: m.c2w as f64 / fs.len() as f64,
                slot_nacks,
                window_trace,
            }
        };

        let reroutes: u64 = recov.iter().map(|r| r.reroutes).sum();
        let hedges: u64 = recov.iter().map(|r| r.hedges).sum();
        let hedge_wins: u64 = recov.iter().map(|r| r.hedge_wins).sum();
        let quarantines: u64 = recov.iter().map(|r| r.quarantines).sum();
        t.push(vec![
            machines.to_string(),
            crate::report::fmt_duration(elapsed),
            format!("{qps_cached:.0}"),
            format!("{qps_uncached:.0}"),
            format!("{:.0}", headline.qps),
            format!("{:.0}", adaptive.qps),
            format!("{:.3}", headline.frames_per_query_per_worker),
            format!("{:.1}%", delta.hit_rate() * 100.0),
            format!("{p50}us"),
            format!("{p99}us"),
            format!("{unbalance:.2}"),
            format!("{reroutes}/{hedges}/{hedge_wins}/{quarantines}"),
        ]);
        summary.points.push(ThroughputPoint {
            machines,
            qps_cached,
            qps_uncached,
            qps_batched: headline.qps,
            cache_hit_rate: delta.hit_rate(),
            p50_micros: p50,
            p99_micros: p99,
            busy_micros,
            eval_hist,
            unbalance,
            batch_sweep,
            adaptive,
            reroutes,
            hedges,
            hedge_wins,
            quarantines,
        });
    }
    (t, summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{load, DatasetId, Scale};

    #[test]
    fn throughput_sweep_reports_cache_latency_and_batching() {
        let ds = load(DatasetId::Aus, Scale::Smoke);
        let params =
            Params { num_fragments: 4, queries_per_point: 2, num_keywords: 3, ..Params::default() };
        let (t, summary) = throughput(&ds, &params);
        assert!(t.rows.len() >= 3); // 1, 2, 4 machines
        assert_eq!(t.rows.len(), summary.points.len());
        for p in &summary.points {
            assert!(p.qps_cached > 0.0);
            assert!(p.qps_uncached > 0.0);
            assert!(p.qps_batched > 0.0);
            // The measured batch replays the warmup stream, so a warm cache
            // must serve well over half the lookups.
            assert!(p.cache_hit_rate > 0.5, "hit rate {} too low", p.cache_hit_rate);
            assert!(p.p50_micros <= p.p99_micros);
            // The timing plane reports busy time on serial and pooled
            // workers alike; the histogram only fills under a pool
            // (worker_threads > 1), so no lower bound is asserted here.
            assert!(p.busy_micros > 0);
            // Frame economy is deterministic: ceil(n/window)/n frames per
            // query per worker — 1.0 unbatched, < 0.25 at window ≥ 8 for
            // the 20-query smoke batch.
            assert_eq!(p.batch_sweep.len(), SWEEP_WINDOWS.len());
            for b in &p.batch_sweep {
                let n = summary.queries;
                let expect = n.div_ceil(b.window) as f64 / n as f64;
                assert!(
                    (b.frames_per_query_per_worker - expect).abs() < 1e-9,
                    "window {}: frames/q/w {} != {}",
                    b.window,
                    b.frames_per_query_per_worker,
                    expect
                );
                assert!(b.bytes_per_query > 0.0);
            }
            let unbatched = &p.batch_sweep[0];
            assert!((unbatched.frames_per_query_per_worker - 1.0).abs() < 1e-9);
            let headline =
                p.batch_sweep.iter().find(|b| b.window == HEADLINE_WINDOW).expect("headline");
            assert!(
                headline.frames_per_query_per_worker < 0.25,
                "window {HEADLINE_WINDOW} frames/q/w {}",
                headline.frames_per_query_per_worker
            );
            // Slot sharing must shrink the dispatched bytes too.
            assert!(headline.bytes_per_query < unbatched.bytes_per_query);

            // The adaptive row: a live controller trace, no NACKs on a
            // fault-free run, and reference elision keeping the dispatch
            // link below the unbatched full-spec baseline.
            let a = &p.adaptive;
            assert!(a.qps > 0.0);
            assert!(a.p50_micros <= a.p99_micros);
            assert!(!a.window_trace.is_empty(), "controller must close windows");
            assert!(a.window_trace.iter().all(|&w| (1..=256).contains(&w)));
            assert_eq!(a.slot_nacks, 0, "fault-free run must not NACK");
            assert!(a.frames_per_query_per_worker < 1.0);
            assert!(
                a.c2w_bytes_per_query < unbatched.c2w_bytes_per_query,
                "elision must beat per-query full-spec dispatch: {} vs {}",
                a.c2w_bytes_per_query,
                unbatched.c2w_bytes_per_query
            );
        }
        let json = summary.to_json();
        assert!(json.contains("\"qps_cached\""));
        assert!(json.contains("\"qps_batched\""));
        assert!(json.contains("\"busy_micros\""));
        assert!(json.contains("\"eval_hist\""));
        assert!(json.contains("\"batch_sweep\""));
        assert!(json.contains("\"frames_per_query_per_worker\""));
        assert!(json.contains("\"c2w_bytes_per_query\""));
        assert!(json.contains("\"adaptive\""));
        assert!(json.contains("\"window_trace\""));
        assert!(json.contains("\"hedges\""));
        assert!(json.contains("\"quarantines\""));
        assert!(json.trim_start().starts_with('{') && json.trim_end().ends_with('}'));
    }
}
