//! Throughput experiment — the introduction's second motivation: "it will
//! improve the throughput of query processing".
//!
//! A batch of SGKQs is pushed through the threaded cluster *pipelined*
//! (all requests dispatched before gathering), so worker machines drain
//! their queues concurrently. Throughput = queries / batch wall-clock, per
//! machine count.

use disks_cluster::{Cluster, ClusterConfig, NetworkModel};
use disks_core::{build_all_indexes, DFunction, IndexConfig};
use disks_partition::{MultilevelPartitioner, Partitioner};

use crate::datasets::Dataset;
use crate::params::Params;
use crate::queries::QueryGenerator;
use crate::report::Table;

/// Pipelined throughput vs number of machines.
pub fn throughput(ds: &Dataset, params: &Params) -> Table {
    let e = ds.net.avg_edge_weight();
    let max_r = params.max_r(e);
    let r = params.r(e).min(max_r);
    let batch = (params.queries_per_point * 10).max(20);
    let mut gen = QueryGenerator::new(&ds.net, 0x7890);
    let fs: Vec<DFunction> =
        gen.sgkq_batch(batch, params.num_keywords, r).iter().map(|q| q.to_dfunction()).collect();

    let mut t = Table::new(
        format!(
            "Throughput: pipelined SGKQ batch of {} queries (#kw={}), {}",
            fs.len(),
            params.num_keywords,
            ds.id.name()
        ),
        vec!["machines".into(), "batch wall".into(), "queries/sec".into()],
    );
    // Fragment count fixed at the default; machines vary (the §5.2
    // fewer-machines-than-fragments schedule kicks in below k).
    let k = params.num_fragments;
    let partitioning = MultilevelPartitioner::default().partition(&ds.net, k);
    let indexes = build_all_indexes(&ds.net, &partitioning, &IndexConfig::with_max_r(max_r));
    for &machines in &[1usize, 2, 4, 8, 16] {
        if machines > k {
            continue;
        }
        let cluster = Cluster::build(
            &ds.net,
            &partitioning,
            indexes.clone(),
            ClusterConfig {
                machines: Some(machines),
                network: NetworkModel::instant(),
                ..ClusterConfig::default()
            },
        );
        // Warmup pass.
        let _ = cluster.run_pipelined(&fs).expect("warmup batch");
        let (results, elapsed) = cluster.run_pipelined(&fs).expect("batch");
        assert_eq!(results.len(), fs.len());
        let qps = fs.len() as f64 / elapsed.as_secs_f64().max(1e-9);
        t.push(vec![
            machines.to_string(),
            crate::report::fmt_duration(elapsed),
            format!("{qps:.0}"),
        ]);
        cluster.shutdown();
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{load, DatasetId, Scale};

    #[test]
    fn throughput_table_has_machine_sweep() {
        let ds = load(DatasetId::Aus, Scale::Smoke);
        let params =
            Params { num_fragments: 4, queries_per_point: 2, num_keywords: 3, ..Params::default() };
        let t = throughput(&ds, &params);
        assert!(t.rows.len() >= 3); // 1, 2, 4 machines
        for row in &t.rows {
            let qps: f64 = row[2].parse().unwrap();
            assert!(qps > 0.0);
        }
    }
}
