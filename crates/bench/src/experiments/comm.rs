//! Communication-cost contrast (the §2.3 claim).
//!
//! The paper's core architectural argument: general distributed graph
//! processing (Pregel-style BSP, or partitioned Dijkstra with iterative
//! correcting) needs *many rounds* of inter-machine communication per
//! query, while the NPD-index answers in **one** round with **zero**
//! inter-worker bytes. This experiment measures all three on the same
//! query workload.

use disks_baseline::{bsp_sgkq, iterative_coverage, IterativeStats};
use disks_cluster::{Cluster, ClusterConfig};
use disks_core::{build_all_indexes, IndexConfig, SgkQuery};
use disks_partition::{MultilevelPartitioner, Partitioner};

use crate::datasets::Dataset;
use crate::params::Params;
use crate::queries::QueryGenerator;
use crate::report::{fmt_bytes, Table};

/// Compare NPD vs BSP vs iterative-correcting on SGKQ workloads.
pub fn comm_contrast(ds: &Dataset, params: &Params) -> Table {
    let e = ds.net.avg_edge_weight();
    let max_r = params.max_r(e);
    let r = (params.r(e) / 4).max(e); // moderate radius keeps BSP tractable
    let k = params.num_fragments;
    let partitioning = MultilevelPartitioner::default().partition(&ds.net, k);
    let indexes = build_all_indexes(&ds.net, &partitioning, &IndexConfig::with_max_r(max_r));
    let cluster = Cluster::build(&ds.net, &partitioning, indexes, ClusterConfig::default());

    let mut gen = QueryGenerator::new(&ds.net, 0xC0C0);
    let queries: Vec<SgkQuery> = gen.sgkq_batch(params.queries_per_point, 3, r);

    let mut npd_rounds = 0u64;
    let mut npd_inter_bytes = 0u64;
    let mut npd_coord_bytes = 0u64;
    let mut bsp_rounds = 0u64;
    let mut bsp_inter_bytes = 0u64;
    let mut iter_rounds = 0u64;
    let mut iter_inter_bytes = 0u64;
    let count = queries.len().max(1) as u64;

    for q in &queries {
        let outcome = cluster.run_sgkq(q).expect("NPD query");
        npd_rounds += u64::from(outcome.stats.rounds);
        npd_inter_bytes += outcome.stats.inter_worker_bytes;
        npd_coord_bytes +=
            outcome.stats.coordinator_to_worker_bytes + outcome.stats.worker_to_coordinator_bytes;

        let (bsp_nodes, bsp_run) = bsp_sgkq(&ds.net, &partitioning, &q.keywords, q.radius);
        assert_eq!(bsp_nodes, outcome.results, "BSP baseline must agree with NPD");
        bsp_rounds += bsp_run.supersteps as u64;
        bsp_inter_bytes += bsp_run.inter_fragment_bytes;

        let mut it_total = IterativeStats::default();
        for &kw in &q.keywords {
            let (_, stats) = iterative_coverage(&ds.net, &partitioning, kw, q.radius);
            it_total.rounds += stats.rounds;
            it_total.boundary_bytes += stats.boundary_bytes;
        }
        iter_rounds += it_total.rounds as u64;
        iter_inter_bytes += it_total.boundary_bytes;
    }
    cluster.shutdown();

    let mut t = Table::new(
        format!("Communication per SGKQ (3 keywords, r={}e, k={}), {}", r / e, k, ds.id.name()),
        vec![
            "method".into(),
            "rounds/query".into(),
            "inter-worker bytes/query".into(),
            "coordinator bytes/query".into(),
        ],
    );
    t.push(vec![
        "NPD-index (ours)".into(),
        format!("{:.1}", npd_rounds as f64 / count as f64),
        fmt_bytes(npd_inter_bytes / count),
        fmt_bytes(npd_coord_bytes / count),
    ]);
    t.push(vec![
        "BSP (Pregel-style)".into(),
        format!("{:.1}", bsp_rounds as f64 / count as f64),
        fmt_bytes(bsp_inter_bytes / count),
        "-".into(),
    ]);
    t.push(vec![
        "iterative correcting [23]".into(),
        format!("{:.1}", iter_rounds as f64 / count as f64),
        fmt_bytes(iter_inter_bytes / count),
        "-".into(),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{load, DatasetId, Scale};

    #[test]
    fn npd_wins_on_rounds_and_bytes() {
        let ds = load(DatasetId::Aus, Scale::Smoke);
        let params = Params { num_fragments: 3, queries_per_point: 2, ..Params::default() };
        let t = comm_contrast(&ds, &params);
        assert_eq!(t.rows.len(), 3);
        // NPD: exactly 1 round, 0 inter-worker bytes.
        assert_eq!(t.rows[0][1], "1.0");
        assert_eq!(t.rows[0][2], "0B");
        // Baselines: strictly more rounds.
        let bsp_rounds: f64 = t.rows[1][1].parse().unwrap();
        let iter_rounds: f64 = t.rows[2][1].parse().unwrap();
        assert!(bsp_rounds > 1.0, "BSP should need multiple rounds: {bsp_rounds}");
        assert!(iter_rounds > 1.0, "iterative correcting needs multiple rounds: {iter_rounds}");
    }
}
