//! Straggler-hedging sweep — tail latency under fault-delayed worker
//! frames, speculation off vs adaptive (`results/BENCH_hedging.json`).
//!
//! **Fault model.** Every worker→coordinator link delays one frame per
//! [`FAULT_EVERY`] (~1% of worker frames), each by the same `delay`: at
//! least 10× the probe-run median per-query latency (the "typical
//! service time"), at least 45 ms, and at least 16× the probe's
//! *evaluation* p99 — the hedge deadline adapts to `4 ×` that same
//! evaluation p99, so the last floor pins the deadline at ≤ 1/4 of the
//! injected stall and speculation has room to win rather than racing
//! the stall itself. Both arms run the identical stream, placement, and
//! fault plan; only [`ClusterConfig::hedge`] differs.
//!
//! **Topology.** `k` machines, one fragment each plus one replica of
//! every fragment ([`ClusterConfig::replicas`] = 1) under least-loaded
//! routing — a hedge always has a live alternate host. Batching and the
//! coverage cache are off so each query's frames map 1:1 onto fragments
//! and service cost stays comparable across arms; quarantine is off so
//! the sweep isolates hedging from the rest of the health plane.
//!
//! **Metrics.** Per-query wall-clock over the sequential stream
//! (p50/p99/mean), every answer checked byte-for-byte against the
//! centralized oracle, and the extended frame ledger
//! `c2w == dispatch + retries + prewarm + hedges + probes` asserted per
//! arm — speculative frames must stay exactly accounted even under
//! chaos. The acceptance headline `repro` prints: adaptive p99 ≤ 0.5×
//! the hedging-off p99 on the same stream (pinned at bench scale; the
//! smoke-scale unit test leaves contention headroom).
//!
//! [`ClusterConfig::hedge`]: disks_cluster::ClusterConfig::hedge
//! [`ClusterConfig::replicas`]: disks_cluster::ClusterConfig::replicas

use std::time::{Duration, Instant};

use disks_cluster::{
    Cluster, ClusterConfig, FaultPlan, HedgeMode, LinkDirection, NetworkModel, RoutePolicy,
};
use disks_core::{build_all_indexes, CentralizedCoverage, IndexConfig, NpdIndex, SgkQuery};
use disks_partition::{MultilevelPartitioner, Partitioner, Partitioning};

use crate::datasets::Dataset;
use crate::params::Params;
use crate::queries::QueryGenerator;
use crate::report::Table;

/// Query radius in average edge lengths: enough evaluation work that a
/// frame's service time is measurable, small enough that the injected
/// delay — not compute — dominates the fault tail.
const BASE_R_FACTOR: u64 = 8;

/// One frame per this many is delayed on every worker→coordinator link
/// (~1% of worker frames).
const FAULT_EVERY: u64 = 100;

/// Fixed-mode deadline / adaptive-mode floor for the hedge (ms): small
/// against the injected delay, large against a healthy answer.
const HEDGE_FLOOR_MS: u64 = 5;

/// Injected delay never goes below this (µs), so the stall is a real
/// tail event even on datasets whose queries answer in microseconds.
/// Recovery (hedge deadline + detection tick + the replica's answer)
/// costs a roughly scale-independent ~15 ms, so the floor also sets the
/// best-case p99 contrast the sweep can show.
const MIN_DELAY_US: u64 = 45_000;

/// Unmeasured queries run per arm before the timed stream: the adaptive
/// deadline's evaluation window must reflect steady-state tails, not
/// spawn-time page faults — an early cold outlier would otherwise pin
/// the ring p99 (and so the deadline) at 4× a one-off for the whole
/// run. Every fault ordinal lands past the warm-up frames.
const WARMUP: usize = 50;

/// One hedging arm (off or adaptive) over the faulted stream.
#[derive(Debug, Clone, PartialEq)]
pub struct HedgingPoint {
    /// `"off"` or `"adaptive"` ([`HedgeMode`]).
    pub mode: String,
    /// Per-query wall-clock percentiles over the sequential stream (µs).
    pub p50_micros: u64,
    pub p99_micros: u64,
    pub mean_micros: u64,
    /// Speculative hedge frames sent (0 with hedging off).
    pub hedges: u64,
    /// Hedges whose answer arrived first (the speculation paid off).
    pub hedge_wins: u64,
    /// Narrowed stall retries (0 here: the deadline sits far above the
    /// injected delay, so the off arm pays the stall instead of retrying).
    pub retries: u64,
    /// Gather deadline expirations (0 for the same reason).
    pub timeouts: u64,
    /// Coordinator→worker frames over the arm — the left side of the
    /// extended ledger the arm asserts.
    pub frames: u64,
}

/// Machine-readable summary of the hedging sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct HedgingSummary {
    pub dataset: String,
    /// Queries per arm.
    pub queries: usize,
    /// Machines (each also hosting one replica of another fragment).
    pub machines: usize,
    /// Probe-run median per-query latency (µs) — the "typical service
    /// time" the injected delay is a multiple of.
    pub typical_micros: u64,
    /// Probe-run *evaluation* p99 (µs, slowest fragment's worker-reported
    /// compute — the signal the adaptive hedge deadline tracks); the
    /// delay also clears 16× this.
    pub probe_eval_p99_micros: u64,
    /// The injected per-frame delay (ms).
    pub delay_ms: u64,
    /// One frame per this many is delayed on each worker link.
    pub fault_every: u64,
    /// Delay faults scheduled per worker link.
    pub faults_per_link: u64,
    pub points: Vec<HedgingPoint>,
}

impl HedgingSummary {
    /// The arm named `mode`, if measured.
    pub fn point(&self, mode: &str) -> Option<&HedgingPoint> {
        self.points.iter().find(|p| p.mode == mode)
    }

    /// `p99(adaptive) / p99(off)` — the acceptance headline (≤ 0.5 at
    /// bench scale).
    pub fn p99_ratio(&self) -> Option<f64> {
        let off = self.point("off")?.p99_micros;
        let adaptive = self.point("adaptive")?.p99_micros;
        (off > 0).then(|| adaptive as f64 / off as f64)
    }

    /// Hand-formatted JSON (the repo carries no serde).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"dataset\": \"{}\",\n", self.dataset));
        s.push_str(&format!("  \"queries\": {},\n", self.queries));
        s.push_str(&format!("  \"machines\": {},\n", self.machines));
        s.push_str(&format!("  \"typical_micros\": {},\n", self.typical_micros));
        s.push_str(&format!("  \"probe_eval_p99_micros\": {},\n", self.probe_eval_p99_micros));
        s.push_str(&format!("  \"delay_ms\": {},\n", self.delay_ms));
        s.push_str(&format!("  \"fault_every\": {},\n", self.fault_every));
        s.push_str(&format!("  \"faults_per_link\": {},\n", self.faults_per_link));
        s.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            let sep = if i + 1 == self.points.len() { "" } else { "," };
            s.push_str(&format!(
                "    {{\"mode\": \"{}\", \"p50_micros\": {}, \"p99_micros\": {}, \
                 \"mean_micros\": {}, \"hedges\": {}, \"hedge_wins\": {}, \"retries\": {}, \
                 \"timeouts\": {}, \"frames\": {}}}{sep}\n",
                p.mode,
                p.p50_micros,
                p.p99_micros,
                p.mean_micros,
                p.hedges,
                p.hedge_wins,
                p.retries,
                p.timeouts,
                p.frames
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

fn build(
    ds: &Dataset,
    partitioning: &Partitioning,
    indexes: Vec<NpdIndex>,
    machines: usize,
    hedge: HedgeMode,
    faults: Option<FaultPlan>,
) -> Cluster {
    Cluster::build(
        &ds.net,
        partitioning,
        indexes,
        ClusterConfig {
            machines: Some(machines),
            network: NetworkModel::instant(),
            // Far above the injected delay: the off arm must pay the
            // stall in full rather than be rescued by a narrowed retry,
            // so the contrast measures speculation alone.
            deadline: Duration::from_secs(5),
            coverage_cache_bytes: 0,
            batch_window: 1,
            batch_adaptive: false,
            replicas: 1,
            route: RoutePolicy::LeastLoaded,
            faults,
            hedge,
            hedge_ms: HEDGE_FLOOR_MS,
            quarantine: false,
            ..ClusterConfig::default()
        },
    )
}

/// (p50, p99) of a latency sample in µs; (0, 0) on an empty sample.
fn percentiles(mut lat: Vec<u64>) -> (u64, u64) {
    if lat.is_empty() {
        return (0, 0);
    }
    lat.sort_unstable();
    (lat[lat.len() / 2], lat[(lat.len() * 99 / 100).min(lat.len() - 1)])
}

/// Hedging sweep: ~1% of worker frames delayed ≥ 10× typical service
/// time, hedging off vs adaptive on the identical stream and fault plan.
pub fn hedging(ds: &Dataset, params: &Params) -> (Table, HedgingSummary) {
    let e = ds.net.avg_edge_weight();
    let r = BASE_R_FACTOR * e;
    let n = (params.queries_per_point * 50).max(200);
    let mut gen = QueryGenerator::new(&ds.net, 0x4ED6);
    let stream: Vec<SgkQuery> = gen.sgkq_batch(n, params.num_keywords, r);
    assert!(!stream.is_empty(), "query generator produced an empty stream");

    let k = params.num_fragments;
    let partitioning = MultilevelPartitioner::default().partition(&ds.net, k);
    let indexes = build_all_indexes(&ds.net, &partitioning, &IndexConfig::with_max_r(r));

    let mut oracle = CentralizedCoverage::new(&ds.net);
    let oracle_answers: Vec<_> =
        stream.iter().map(|q| oracle.sgkq(q).expect("oracle answers everything")).collect();

    // Probe: the fault-free cluster calibrates the typical (median)
    // per-query latency and the *evaluation* p99 (slowest fragment's
    // worker-reported compute) the delay is scaled from. The evaluation
    // p99 matters because the adaptive hedge deadline is 4× that same
    // signal — flooring the delay at 16× pins the deadline at ≤ 1/4 of
    // the stall, so speculation always has room to win.
    let probe = build(ds, &partitioning, indexes.clone(), k, HedgeMode::Off, None);
    let mut probe_lat: Vec<u64> = Vec::with_capacity(stream.len());
    let mut probe_eval: Vec<u64> = Vec::with_capacity(stream.len());
    for (i, q) in stream.iter().enumerate() {
        let t0 = Instant::now();
        let o = probe.run_sgkq(q).unwrap_or_else(|e| panic!("probe query {i}: {e}"));
        probe_lat.push(t0.elapsed().as_micros() as u64);
        probe_eval.push(o.stats.slowest_task.as_micros() as u64);
        assert_eq!(o.results, oracle_answers[i], "probe query {i} not exact");
    }
    probe.shutdown();
    let (typical_us, _) = percentiles(probe_lat);
    let (_, probe_eval_p99_us) = percentiles(probe_eval);
    let delay_us = (10 * typical_us).max(16 * probe_eval_p99_us).max(MIN_DELAY_US);
    let delay_ms = delay_us.div_ceil(1_000);

    // One delayed frame per FAULT_EVERY on every worker→coordinator
    // link, staggered per machine so the links do not stall in lockstep.
    // The stagger is replica-pair aware: with `replicas: 1` the bi-level
    // placement pairs machines (2i ↔ 2i+1) as each other's only replica,
    // so buddies get opposite halves of the fault period. Hedging
    // *compresses* wall time through a stall (serialized queries no
    // longer wait it out) and every hedge answer advances the buddy
    // link's frame ordinal, so a naive small stagger lets both halves of
    // a pair stall at once in the hedged arm only — and a fragment whose
    // sole alternate is also mid-stall has nowhere to hedge.
    let faults_per_link = (n as u64 / FAULT_EVERY).max(1);
    let mut plan = FaultPlan::new(0x4ED9);
    for m in 0..k {
        let stagger = (m as u64 / 2) * 7 + (m as u64 % 2) * (FAULT_EVERY / 2);
        for j in 1..=faults_per_link {
            plan = plan.delay_frame(
                m,
                LinkDirection::WorkerToCoordinator,
                j * FAULT_EVERY + stagger,
                delay_ms,
            );
        }
    }

    let mut t = Table::new(
        format!(
            "Hedging: 1/{FAULT_EVERY} worker frames delayed {delay_ms}ms \
             (typical {typical_us}us), {n} queries, {k} machines + 1 replica each, {}",
            ds.id.name()
        ),
        vec![
            "hedge".into(),
            "p50".into(),
            "p99".into(),
            "mean".into(),
            "hedges".into(),
            "wins".into(),
            "retries".into(),
            "frames".into(),
        ],
    );
    let mut summary = HedgingSummary {
        dataset: ds.id.name().to_string(),
        queries: n,
        machines: k,
        typical_micros: typical_us,
        probe_eval_p99_micros: probe_eval_p99_us,
        delay_ms,
        fault_every: FAULT_EVERY,
        faults_per_link,
        points: Vec::new(),
    };

    for (name, mode) in [("off", HedgeMode::Off), ("adaptive", HedgeMode::Adaptive)] {
        let cluster = build(ds, &partitioning, indexes.clone(), k, mode, Some(plan.clone()));
        // Warm-up (untimed, still exact): populates the adaptive
        // deadline's evaluation window with steady-state samples before
        // the first fault ordinal can fire.
        for (i, q) in stream.iter().take(WARMUP).enumerate() {
            let o = cluster.run_sgkq(q).unwrap_or_else(|e| panic!("{name} warm-up {i}: {e}"));
            assert_eq!(o.results, oracle_answers[i], "{name} warm-up query {i} not exact");
        }
        let mut lat: Vec<u64> = Vec::with_capacity(stream.len());
        for (i, q) in stream.iter().enumerate() {
            let t0 = Instant::now();
            let o = cluster.run_sgkq(q).unwrap_or_else(|e| panic!("{name} arm query {i}: {e}"));
            lat.push(t0.elapsed().as_micros() as u64);
            assert_eq!(o.results, oracle_answers[i], "{name} arm query {i} not exact");
        }
        let rc = cluster.recovery_counters();
        let oc = cluster.overload_counters();
        let (c2w, _) = cluster.link_message_totals();
        // The extended ledger closes under chaos: every c2w frame is a
        // dispatch, a narrowed retry, a pre-warm, a hedge, or a probe.
        assert_eq!(
            c2w,
            oc.dispatch_frames + rc.retries + rc.prewarm_frames + rc.hedges + rc.probe_frames,
            "{name} arm: frame ledger must reconcile exactly: {oc:?} {rc:?}"
        );
        cluster.shutdown();

        let mean = lat.iter().sum::<u64>() / lat.len().max(1) as u64;
        let (p50, p99) = percentiles(lat);
        t.push(vec![
            name.into(),
            format!("{p50}us"),
            format!("{p99}us"),
            format!("{mean}us"),
            rc.hedges.to_string(),
            rc.hedge_wins.to_string(),
            rc.retries.to_string(),
            c2w.to_string(),
        ]);
        summary.points.push(HedgingPoint {
            mode: name.to_string(),
            p50_micros: p50,
            p99_micros: p99,
            mean_micros: mean,
            hedges: rc.hedges,
            hedge_wins: rc.hedge_wins,
            retries: rc.retries,
            timeouts: rc.timeouts,
            frames: c2w,
        });
    }
    (t, summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{load, DatasetId, Scale};

    #[test]
    fn hedging_sweep_cuts_the_fault_tail() {
        let ds = load(DatasetId::Aus, Scale::Smoke);
        let params =
            Params { num_fragments: 4, queries_per_point: 2, num_keywords: 3, ..Params::default() };
        let (t, summary) = hedging(&ds, &params);
        assert_eq!(t.rows.len(), 2);
        assert_eq!(summary.points.len(), 2);
        assert!(summary.delay_ms * 1_000 >= MIN_DELAY_US);
        assert!(summary.faults_per_link >= 1);

        // The off arm pays every injected stall in full: no speculation,
        // no retries (the deadline sits far above the delay), and a p99
        // that swallows the delay whole.
        let off = summary.point("off").expect("off arm");
        assert_eq!(off.hedges, 0);
        assert_eq!(off.hedge_wins, 0);
        assert_eq!(off.retries, 0);
        assert!(
            off.p99_micros >= summary.delay_ms * 1_000,
            "off-arm p99 {}us must absorb the {}ms delay",
            off.p99_micros,
            summary.delay_ms
        );

        // The adaptive arm speculates past the stalls: hedges fire, at
        // least one wins, answers stay exact (asserted inside), and the
        // tail drops well below the off arm. (The ≤ 0.5× acceptance
        // headline is pinned on the quiet-machine bench artifact; this
        // unit test runs amid the parallel suite and leaves headroom.)
        let adaptive = summary.point("adaptive").expect("adaptive arm");
        assert!(adaptive.hedges >= 1, "adaptive arm must hedge: {adaptive:?}");
        assert!(adaptive.hedge_wins >= 1, "at least one hedge must win: {adaptive:?}");
        assert_eq!(adaptive.retries, 0);
        let ratio = summary.p99_ratio().expect("both arms measured");
        assert!(
            ratio < 0.75,
            "adaptive p99 {}us not well below off p99 {}us (ratio {ratio:.2})",
            adaptive.p99_micros,
            off.p99_micros
        );
        // Speculation costs frames; the ledger (asserted per arm) keeps
        // them accounted.
        assert!(adaptive.frames >= off.frames);

        let json = summary.to_json();
        assert!(json.contains("\"typical_micros\""));
        assert!(json.contains("\"delay_ms\""));
        assert!(json.contains("\"hedge_wins\""));
        assert!(json.trim_start().starts_with('{') && json.trim_end().ends_with('}'));
    }
}
