//! D-function-mix and RKQ experiments: Figure 16 (EXP 7) and Figure 17
//! (EXP 8).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use disks_core::{DFunction, IndexConfig, SetOp, Term};

use crate::datasets::Dataset;
use crate::params::Params;
use crate::queries::QueryGenerator;
use crate::report::{fmt_duration, Table};

use super::Deployment;

/// Figure 16 (EXP 7): fix 7 keywords; draw the 6 operators from {∩, −} with
/// 0..=5 subtractions placed at random positions. Different mixes should
/// have minor effect — coverage evaluation dominates (>95 % of cost).
pub fn fig16_dfunctions(ds: &Dataset, params: &Params) -> Table {
    let e = ds.net.avg_edge_weight();
    let max_r = params.max_r(e);
    let r = params.r(e).min(max_r);
    let num_keywords = 7;
    let mut dep =
        Deployment::prepare(&ds.net, params.num_fragments, &IndexConfig::with_max_r(max_r));
    let mut t = Table::new(
        format!("Figure 16: D-function operator mix, {} (7 keywords)", ds.id.name()),
        vec!["#subtractions".into(), "avg response".into()],
    );
    let mut rng = StdRng::seed_from_u64(0xF16);
    // One shared keyword batch across all operator mixes: only the
    // operators vary between points, exactly as in the paper's EXP 7.
    let mut gen = QueryGenerator::new(&ds.net, 0xE000);
    let queries = gen.sgkq_batch(params.queries_per_point, num_keywords, r);
    for subtractions in 0..=5usize {
        if queries.is_empty() {
            continue;
        }
        let fs: Vec<DFunction> = queries
            .iter()
            .map(|q| {
                // Operator slots: 6 total, `subtractions` of them −, rest ∩,
                // shuffled into random positions.
                let mut ops = vec![SetOp::Intersect; num_keywords - 1];
                for op in ops.iter_mut().take(subtractions) {
                    *op = SetOp::Subtract;
                }
                ops.shuffle(&mut rng);
                let mut f = DFunction::single(Term::Keyword(q.keywords[0]), r);
                for (i, &op) in ops.iter().enumerate() {
                    f = f.then(op, Term::Keyword(q.keywords[i + 1]), r);
                }
                f
            })
            .collect();
        t.push(vec![subtractions.to_string(), fmt_duration(dep.mean_response(&fs))]);
    }
    t
}

/// Figure 17 (EXP 8): RKQ time vs #keywords.
pub fn fig17_rkq(ds: &Dataset, params: &Params) -> Table {
    let e = ds.net.avg_edge_weight();
    let max_r = params.max_r(e);
    let r = params.r(e).min(max_r);
    let mut dep =
        Deployment::prepare(&ds.net, params.num_fragments, &IndexConfig::with_max_r(max_r));
    let mut t = Table::new(
        format!("Figure 17: RKQ query time vs #keywords, {}", ds.id.name()),
        vec!["#keywords".into(), "avg response".into()],
    );
    for &nk in &Params::KEYWORD_COUNTS {
        let mut gen = QueryGenerator::new(&ds.net, 0xF000 + nk as u64);
        let fs: Vec<DFunction> = gen
            .rkq_batch(params.queries_per_point, nk, r)
            .iter()
            .map(|q| q.to_dfunction())
            .collect();
        if fs.is_empty() {
            continue;
        }
        t.push(vec![nk.to_string(), fmt_duration(dep.mean_response(&fs))]);
    }
    t
}

/// Top-k extension experiment: ranked group-keyword query time vs k,
/// cross-checked against the centralized ranking.
pub fn topk_extension(ds: &Dataset, params: &Params) -> Table {
    use disks_core::{centralized_topk, merge_topk, ScoreCombine, TopKQuery};
    let e = ds.net.avg_edge_weight();
    let max_r = params.max_r(e);
    let horizon = max_r / 4;
    let mut dep =
        Deployment::prepare(&ds.net, params.num_fragments, &IndexConfig::with_max_r(max_r));
    let mut gen = QueryGenerator::new(&ds.net, 0x70FF);
    let base = gen.sgkq_batch(params.queries_per_point, 3, horizon);
    let mut t = Table::new(
        format!("Top-k extension: ranked SGKQ time vs k, {} (3 keywords)", ds.id.name()),
        vec!["k".into(), "median response".into()],
    );
    for k in [1usize, 10, 100, 1000] {
        let qs: Vec<TopKQuery> = base
            .iter()
            .map(|q| TopKQuery::new(q.keywords.clone(), k, horizon, ScoreCombine::Max))
            .collect();
        if qs.is_empty() {
            continue;
        }
        // Verify once per point against the centralized ranking.
        let lists: Vec<Vec<disks_core::Ranked>> = dep
            .engines
            .iter_mut()
            .map(|engine| engine.topk_local(&qs[0]).expect("topk").0)
            .collect();
        assert_eq!(
            merge_topk(lists, k),
            centralized_topk(&ds.net, &qs[0]).expect("centralized"),
            "top-k mismatch at k={k}"
        );
        // Warmup + median of per-query slowest-task times.
        let mut times = Vec::with_capacity(qs.len());
        for q in &qs {
            for engine in &mut dep.engines {
                let _ = engine.topk_local(q).expect("warmup");
            }
        }
        for q in &qs {
            let slowest = dep
                .engines
                .iter_mut()
                .map(|engine| engine.topk_local(q).expect("topk").1.elapsed)
                .max()
                .unwrap_or_default();
            times.push(slowest);
        }
        t.push(vec![k.to_string(), fmt_duration(crate::report::median_duration(&times))]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{load, DatasetId, Scale};

    fn smoke_params() -> Params {
        Params { num_fragments: 3, queries_per_point: 2, ..Params::default() }
    }

    #[test]
    fn topk_extension_runs_and_verifies() {
        let ds = load(DatasetId::Aus, Scale::Smoke);
        let t = topk_extension(&ds, &smoke_params());
        assert!(!t.rows.is_empty());
    }

    #[test]
    fn fig16_sweeps_subtraction_counts() {
        let ds = load(DatasetId::Aus, Scale::Smoke);
        let t = fig16_dfunctions(&ds, &smoke_params());
        assert_eq!(t.rows.len(), 6);
        assert_eq!(t.rows[0][0], "0");
        assert_eq!(t.rows[5][0], "5");
    }

    #[test]
    fn fig17_sweeps_keyword_counts() {
        let ds = load(DatasetId::Aus, Scale::Smoke);
        let t = fig17_rkq(&ds, &smoke_params());
        assert!(!t.rows.is_empty());
    }
}
