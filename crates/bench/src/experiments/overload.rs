//! Overload saturation sweep — offered load vs goodput / p99 / shed-rate,
//! tracking the shed knee across PRs (`results/BENCH_overload.json`).
//!
//! **Offered load** is expressed in units of the cluster's admission
//! capacity. A base stream of *sustainable* SGKQs is generated and the
//! per-worker cost budget ([`ClusterConfig::cost_limit`]) is calibrated to
//! its most expensive member, so at load 1× every query admits. Load `L`
//! then interleaves, after each sustainable query, `L−1` *oversized*
//! variants of it — the same keywords at an inflated radius chosen so their
//! Theorem 5 estimated cost provably exceeds the budget. The offered cost
//! is therefore ≈ `L×` what the budget sustains.
//!
//! Each load level runs twice through `Cluster::run_stream` on fresh
//! clusters: shedding **on** (the calibrated `cost_limit`) and shedding
//! **off** (`cost_limit = 0`, the pre-overload path that serves
//! everything). The coverage cache is disabled in both so evaluation cost —
//! not memoization — carries the load, and brownout is disabled so the
//! sweep isolates pure cost-model admission (with the cache off, the
//! skip-cache-cold brownout rule would turn away sustainable traffic too).
//!
//! **Goodput** counts only the *sustainable* (in-budget) queries answered,
//! per second of stream wall-clock: serving an oversized query is overload,
//! not useful work. With shedding on, the oversized queries are refused
//! before a frame is encoded, so goodput at 4× offered load stays within a
//! few percent of the 1× peak. With shedding off, the same sustainable
//! queries are answered across a stream that takes ≥ `L×` as long, so
//! goodput collapses like `1/L` — the contrast the acceptance criterion
//! pins at 15%.
//!
//! [`ClusterConfig::cost_limit`]: disks_cluster::ClusterConfig::cost_limit

use disks_cluster::{Cluster, ClusterConfig, NetworkModel};
use disks_core::{
    build_all_indexes, CostParams, DFunction, IndexConfig, NpdIndex, QueryError, QueryPlan,
    SgkQuery,
};
use disks_partition::{MultilevelPartitioner, Partitioner, Partitioning};

use crate::datasets::Dataset;
use crate::params::Params;
use crate::queries::QueryGenerator;
use crate::report::Table;

/// Offered-load multipliers swept (×admission capacity).
const LOADS: [usize; 4] = [1, 2, 3, 4];

/// Sustainable-query radius in average edge lengths: small enough that a
/// stream of them admits under the calibrated budget, large enough that
/// evaluation (not channel overhead) dominates the wall-clock.
const BASE_R_FACTOR: u64 = 8;

/// Candidate radius multipliers for the oversized variants; the first one
/// whose cheapest variant out-costs the most expensive sustainable query is
/// used, so "oversized ⇒ over budget" holds for every variant.
const OVERSIZED_MULTIPLIERS: [u64; 3] = [4, 6, 8];

/// Batched-dispatch window for both modes (amortizes frames identically).
const BATCH_WINDOW: usize = 16;

/// One offered-load measurement: shedding on vs shedding off.
#[derive(Debug, Clone, PartialEq)]
pub struct OverloadPoint {
    /// Offered load in capacity units (1 = everything sustainable).
    pub load: usize,
    /// Queries offered at this load (base + oversized variants).
    pub offered: usize,
    /// Queries shed with [`QueryError::Overloaded`] (shedding on).
    pub shed_on: usize,
    /// `shed_on / offered`.
    pub shed_rate_on: f64,
    /// Sustainable queries answered per second, shedding on.
    pub goodput_on: f64,
    /// Sustainable queries answered per second, shedding off.
    pub goodput_off: f64,
    /// Per-query wall-time percentiles over answered queries (µs).
    pub p50_on_micros: u64,
    pub p99_on_micros: u64,
    pub p50_off_micros: u64,
    pub p99_off_micros: u64,
    /// Coordinator→worker frames over the measured stream — the wire-level
    /// proof that shed queries cost nothing.
    pub frames_on: u64,
    pub frames_off: u64,
    /// Lifetime Theorem 6 unbalance factor U per mode (max/min observed
    /// compute across busy machines; 1.0 = balanced).
    pub unbalance_on: f64,
    pub unbalance_off: f64,
    /// Health-plane recovery activity summed over both modes' clusters:
    /// narrowed retries, replica reroutes, speculative hedges (and wins),
    /// quarantine transitions. Zero on the default environment; nonzero
    /// under `DISKS_HEDGE` / `DISKS_QUARANTINE` lanes, where it shows
    /// what recovery contributed to the measured stream.
    pub retries: u64,
    pub reroutes: u64,
    pub hedges: u64,
    pub hedge_wins: u64,
    pub quarantines: u64,
}

/// Machine-readable summary of the saturation sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct OverloadSummary {
    pub dataset: String,
    /// Sustainable queries per load level.
    pub base_queries: usize,
    pub num_keywords: usize,
    /// The calibrated per-worker cost budget (max sustainable-query cost).
    pub cost_limit: u64,
    /// Radius multiplier of the oversized variants.
    pub oversized_multiplier: u64,
    /// Observed service time per unit of Theorem 5 estimated cost: the
    /// median of `wall_micros / estimated_cost` over the sustainable
    /// queries of the 1× shedding-on stream. Purely observational — how
    /// many microseconds of wall-clock one cost unit actually buys here.
    pub service_micros_per_cost: f64,
    /// The admission budget the observed tail implies: p99 sustainable
    /// wall-clock at 1× divided by [`Self::service_micros_per_cost`] —
    /// i.e. the `DISKS_COST_LIMIT` whose admitted queries would stay
    /// within today's observed tail. Printed by `repro` next to the
    /// configured budget as a cost-model calibration check; never fed
    /// back into admission (no behavior change).
    pub implied_cost_limit: u64,
    pub points: Vec<OverloadPoint>,
}

impl OverloadSummary {
    /// Hand-formatted JSON (the repo carries no serde; the schema is flat
    /// enough that formatting by hand keeps the artifact dependency-free).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"dataset\": \"{}\",\n", self.dataset));
        s.push_str(&format!("  \"base_queries\": {},\n", self.base_queries));
        s.push_str(&format!("  \"num_keywords\": {},\n", self.num_keywords));
        s.push_str(&format!("  \"cost_limit\": {},\n", self.cost_limit));
        s.push_str(&format!("  \"oversized_multiplier\": {},\n", self.oversized_multiplier));
        s.push_str(&format!(
            "  \"service_micros_per_cost\": {:.6},\n",
            self.service_micros_per_cost
        ));
        s.push_str(&format!("  \"implied_cost_limit\": {},\n", self.implied_cost_limit));
        s.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            let sep = if i + 1 == self.points.len() { "" } else { "," };
            s.push_str(&format!(
                "    {{\"load\": {}, \"offered\": {}, \"shed_on\": {}, \"shed_rate_on\": {:.4}, \
                 \"goodput_on\": {:.1}, \"goodput_off\": {:.1}, \"p50_on_micros\": {}, \
                 \"p99_on_micros\": {}, \"p50_off_micros\": {}, \"p99_off_micros\": {}, \
                 \"frames_on\": {}, \"frames_off\": {}, \"unbalance_on\": {:.3}, \
                 \"unbalance_off\": {:.3}, \"retries\": {}, \"reroutes\": {}, \"hedges\": {}, \
                 \"hedge_wins\": {}, \"quarantines\": {}}}{sep}\n",
                p.load,
                p.offered,
                p.shed_on,
                p.shed_rate_on,
                p.goodput_on,
                p.goodput_off,
                p.p50_on_micros,
                p.p99_on_micros,
                p.p50_off_micros,
                p.p99_off_micros,
                p.frames_on,
                p.frames_off,
                p.unbalance_on,
                p.unbalance_off,
                p.retries,
                p.reroutes,
                p.hedges,
                p.hedge_wins,
                p.quarantines
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

fn build(
    ds: &Dataset,
    partitioning: &Partitioning,
    indexes: Vec<NpdIndex>,
    cost_limit: u64,
) -> Cluster {
    Cluster::build(
        &ds.net,
        partitioning,
        indexes,
        ClusterConfig {
            network: NetworkModel::instant(),
            coverage_cache_bytes: 0,
            batch_window: BATCH_WINDOW,
            cost_limit,
            brownout: f64::INFINITY,
            ..ClusterConfig::default()
        },
    )
}

/// One measured pass of the load-`L` stream: warmup on the sustainable
/// stream, then the mixed stream with frame deltas and per-query outcomes.
/// Sustainable queries sit at positions `i % load == 0` by construction.
struct MeasuredRun {
    goodput: f64,
    served_base: usize,
    shed: usize,
    p50_micros: u64,
    p99_micros: u64,
    frames: u64,
    /// Wall micros of the answered *sustainable* queries, in base-stream
    /// order — the sample the service-per-cost calibration reads at 1×.
    base_micros: Vec<u64>,
}

/// Measured passes per load point; the stream outcome is deterministic, so
/// repetition only de-noises the wall-clock — the fastest pass is reported.
const REPS: usize = 3;

fn measure(
    cluster: &Cluster,
    warmup: &[DFunction],
    mixed: &[DFunction],
    load: usize,
) -> MeasuredRun {
    let (warm, _) = cluster.run_stream(warmup);
    assert!(warm.iter().all(|r| r.is_ok()), "sustainable warmup stream must admit everywhere");
    let mut best: Option<MeasuredRun> = None;
    for _ in 0..REPS {
        let (frames_before, _) = cluster.link_message_totals();
        let (items, elapsed) = cluster.run_stream(mixed);
        let (frames_after, _) = cluster.link_message_totals();
        let (mut served_base, mut shed) = (0usize, 0usize);
        let mut lat: Vec<u64> = Vec::with_capacity(items.len());
        let mut base_micros: Vec<u64> = Vec::new();
        for (i, item) in items.iter().enumerate() {
            match item {
                Ok(o) => {
                    let micros = o.stats.wall_time.as_micros() as u64;
                    lat.push(micros);
                    if i % load == 0 {
                        served_base += 1;
                        base_micros.push(micros);
                    }
                }
                Err(QueryError::Overloaded { .. }) => shed += 1,
                Err(e) => panic!("overload sweep hit a non-overload error: {e}"),
            }
        }
        lat.sort_unstable();
        let p50 = lat.get(lat.len() / 2).copied().unwrap_or(0);
        let p99 =
            lat.get((lat.len() * 99 / 100).min(lat.len().saturating_sub(1))).copied().unwrap_or(0);
        let run = MeasuredRun {
            goodput: served_base as f64 / elapsed.as_secs_f64().max(1e-9),
            served_base,
            shed,
            p50_micros: p50,
            p99_micros: p99,
            frames: frames_after - frames_before,
            base_micros,
        };
        if best.as_ref().is_none_or(|b| run.goodput > b.goodput) {
            best = Some(run);
        }
    }
    best.expect("REPS >= 1")
}

/// Saturation sweep: offered load 1–4× admission capacity, shedding on vs
/// off, goodput = sustainable queries answered per second.
pub fn overload(ds: &Dataset, params: &Params) -> (Table, OverloadSummary) {
    let e = ds.net.avg_edge_weight();
    let base_r = BASE_R_FACTOR * e;
    let n = (params.queries_per_point * 10).max(20);
    let mut gen = QueryGenerator::new(&ds.net, 0x10AD);
    let base: Vec<SgkQuery> = gen.sgkq_batch(n, params.num_keywords, base_r);
    assert!(!base.is_empty(), "query generator produced an empty base stream");

    // Calibrate: budget = the most expensive sustainable query, so the 1×
    // stream admits in full; oversized multiplier = the first whose
    // *cheapest* variant out-costs that budget, so every variant sheds on
    // cost alone (deterministically, independent of momentary pressure).
    let cost_params = CostParams::from_network(&ds.net);
    let cost_at = |q: &SgkQuery, r: u64| {
        QueryPlan::lower(&SgkQuery::new(q.keywords.clone(), r).to_dfunction())
            .estimated_cost(&cost_params)
    };
    let base_costs: Vec<u64> = base.iter().map(|q| cost_at(q, base_r)).collect();
    let cost_limit = *base_costs.iter().max().expect("non-empty base");
    let oversized_multiplier = OVERSIZED_MULTIPLIERS
        .into_iter()
        .find(|&m| base.iter().all(|q| cost_at(q, m * base_r) > cost_limit))
        .expect("an oversized multiplier must out-cost the budget for every query");
    let oversized_r = oversized_multiplier * base_r;

    let base_fs: Vec<DFunction> = base.iter().map(|q| q.to_dfunction()).collect();
    let oversized_fs: Vec<DFunction> = base
        .iter()
        .map(|q| SgkQuery::new(q.keywords.clone(), oversized_r).to_dfunction())
        .collect();

    let k = params.num_fragments;
    let partitioning = MultilevelPartitioner::default().partition(&ds.net, k);
    let max_mult = *OVERSIZED_MULTIPLIERS.last().expect("non-empty multiplier sweep");
    let indexes =
        build_all_indexes(&ds.net, &partitioning, &IndexConfig::with_max_r(max_mult * base_r));

    let mut t = Table::new(
        format!(
            "Overload: saturation sweep, {} sustainable queries/load (#kw={}, budget {}), {}",
            base.len(),
            params.num_keywords,
            cost_limit,
            ds.id.name()
        ),
        vec![
            "load".into(),
            "offered".into(),
            "shed(on)".into(),
            "shed rate".into(),
            "goodput on".into(),
            "goodput off".into(),
            "p99 on".into(),
            "p99 off".into(),
            "frames on/off".into(),
            "U on/off".into(),
            "rt/rr/hg/win/quar".into(),
        ],
    );
    let mut summary = OverloadSummary {
        dataset: ds.id.name().to_string(),
        base_queries: base.len(),
        num_keywords: params.num_keywords,
        cost_limit,
        oversized_multiplier,
        service_micros_per_cost: 0.0,
        implied_cost_limit: 0,
        points: Vec::new(),
    };

    for &load in &LOADS {
        // Load-L stream: each sustainable query followed by L−1 oversized
        // variants of it, so sustainable work sits at positions i % L == 0.
        let mixed: Vec<DFunction> = base_fs
            .iter()
            .zip(&oversized_fs)
            .flat_map(|(b, o)| {
                std::iter::once(b.clone()).chain(std::iter::repeat_n(o.clone(), load - 1))
            })
            .collect();

        let on_cluster = build(ds, &partitioning, indexes.clone(), cost_limit);
        let on = measure(&on_cluster, &base_fs, &mixed, load);
        // Calibration read-out at 1× (every sustainable query answered, no
        // oversized traffic inflating the queue): the median observed
        // µs-per-cost-unit, and the budget today's p99 tail corresponds to.
        // Observational only — admission keeps the configured budget.
        if load == 1 {
            assert_eq!(on.base_micros.len(), base_costs.len());
            let mut ratios: Vec<f64> = on
                .base_micros
                .iter()
                .zip(&base_costs)
                .map(|(&m, &c)| m as f64 / c.max(1) as f64)
                .collect();
            ratios.sort_by(|a, b| a.total_cmp(b));
            summary.service_micros_per_cost = ratios[ratios.len() / 2];
            if summary.service_micros_per_cost > 0.0 {
                summary.implied_cost_limit =
                    (on.p99_micros as f64 / summary.service_micros_per_cost) as u64;
            }
        }
        let unbalance_on = on_cluster.unbalance_factor();
        let rc_on = on_cluster.recovery_counters();
        on_cluster.shutdown();
        let off_cluster = build(ds, &partitioning, indexes.clone(), 0);
        let off = measure(&off_cluster, &base_fs, &mixed, load);
        let unbalance_off = off_cluster.unbalance_factor();
        let rc_off = off_cluster.recovery_counters();
        off_cluster.shutdown();

        // Shedding is deterministic at this calibration: exactly the
        // oversized variants go, exactly the sustainable queries stay.
        assert_eq!(on.shed, (load - 1) * base.len(), "load {load}: shed must be exactly oversized");
        assert_eq!(on.served_base, base.len(), "load {load}: every sustainable query answers (on)");
        assert_eq!(off.shed, 0, "load {load}: the disabled gauge must shed nothing");
        assert_eq!(
            off.served_base,
            base.len(),
            "load {load}: every sustainable query answers (off)"
        );

        t.push(vec![
            format!("{load}x"),
            mixed.len().to_string(),
            on.shed.to_string(),
            format!("{:.0}%", 100.0 * on.shed as f64 / mixed.len() as f64),
            format!("{:.0} q/s", on.goodput),
            format!("{:.0} q/s", off.goodput),
            format!("{}us", on.p99_micros),
            format!("{}us", off.p99_micros),
            format!("{}/{}", on.frames, off.frames),
            format!("{unbalance_on:.2}/{unbalance_off:.2}"),
            format!(
                "{}/{}/{}/{}/{}",
                rc_on.retries + rc_off.retries,
                rc_on.reroutes + rc_off.reroutes,
                rc_on.hedges + rc_off.hedges,
                rc_on.hedge_wins + rc_off.hedge_wins,
                rc_on.quarantines + rc_off.quarantines
            ),
        ]);
        summary.points.push(OverloadPoint {
            load,
            offered: mixed.len(),
            shed_on: on.shed,
            shed_rate_on: on.shed as f64 / mixed.len() as f64,
            goodput_on: on.goodput,
            goodput_off: off.goodput,
            p50_on_micros: on.p50_micros,
            p99_on_micros: on.p99_micros,
            p50_off_micros: off.p50_micros,
            p99_off_micros: off.p99_micros,
            frames_on: on.frames,
            frames_off: off.frames,
            unbalance_on,
            unbalance_off,
            retries: rc_on.retries + rc_off.retries,
            reroutes: rc_on.reroutes + rc_off.reroutes,
            hedges: rc_on.hedges + rc_off.hedges,
            hedge_wins: rc_on.hedge_wins + rc_off.hedge_wins,
            quarantines: rc_on.quarantines + rc_off.quarantines,
        });
    }
    (t, summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{load, DatasetId, Scale};

    #[test]
    fn saturation_sweep_sheds_free_and_holds_goodput() {
        let ds = load(DatasetId::Aus, Scale::Smoke);
        let params =
            Params { num_fragments: 4, queries_per_point: 2, num_keywords: 3, ..Params::default() };
        let (t, summary) = overload(&ds, &params);
        assert_eq!(t.rows.len(), LOADS.len());
        assert_eq!(summary.points.len(), LOADS.len());
        let n = summary.base_queries;
        assert!(summary.cost_limit > 1);
        // Calibration read-out: positive µs-per-cost and a nonzero implied
        // budget. No relation to the configured budget is asserted — the
        // read-out is a consistency check for humans, not a gate.
        assert!(summary.service_micros_per_cost > 0.0);
        assert!(summary.implied_cost_limit > 0);

        for (p, &load) in summary.points.iter().zip(&LOADS) {
            assert_eq!(p.load, load);
            assert_eq!(p.offered, n * load);
            // Deterministic knee: exactly the oversized variants shed.
            assert_eq!(p.shed_on, n * (load - 1));
            assert!((p.shed_rate_on - (load - 1) as f64 / load as f64).abs() < 1e-9);
            assert!(p.goodput_on > 0.0 && p.goodput_off > 0.0);
            assert!(p.p50_on_micros <= p.p99_on_micros);
            assert!(p.p50_off_micros <= p.p99_off_micros);
            assert!(p.frames_on > 0 && p.frames_off > 0);
        }
        // Shed queries never reach the wire, so the on-mode stream at 4×
        // load moves no more frames than at 1× (same admitted work), while
        // the off mode pays frames for every oversized query it serves.
        assert_eq!(summary.points[3].frames_on, summary.points[0].frames_on);
        assert!(summary.points[3].frames_off > summary.points[0].frames_off);

        // The acceptance headline: goodput at 4× offered load stays near
        // the peak with shedding on. (Theoretically ~1.0× — the admitted
        // work is identical at every load; the quiet-machine bench artifact
        // pins the 15% bound, while this unit test runs amid the whole
        // parallel suite and needs contention headroom.)
        let peak_on = summary.points.iter().map(|p| p.goodput_on).fold(0.0f64, f64::max);
        let on4 = summary.points[3].goodput_on;
        assert!(on4 >= 0.7 * peak_on, "goodput on @4x {on4:.0} < 70% of peak {peak_on:.0}");
        // …while with it off the same sustainable queries are strung across
        // a ≥4×-long stream: goodput collapses (theoretical ≤ 0.25×; the
        // 0.5 bound leaves headroom for scheduler noise at smoke scale).
        let peak_off = summary.points.iter().map(|p| p.goodput_off).fold(0.0f64, f64::max);
        let off4 = summary.points[3].goodput_off;
        assert!(
            off4 <= 0.5 * peak_off,
            "goodput off @4x {off4:.0} did not collapse from {peak_off:.0}"
        );
        // And at the saturation point shedding beats serving-everything.
        assert!(on4 > 1.5 * off4, "shedding on ({on4:.0}) must beat off ({off4:.0}) at 4x");

        let json = summary.to_json();
        assert!(json.contains("\"cost_limit\""));
        assert!(json.contains("\"service_micros_per_cost\""));
        assert!(json.contains("\"implied_cost_limit\""));
        assert!(json.contains("\"shed_rate_on\""));
        assert!(json.contains("\"goodput_on\""));
        assert!(json.contains("\"hedges\""));
        assert!(json.contains("\"quarantines\""));
        assert!(json.trim_start().starts_with('{') && json.trim_end().ends_with('}'));
    }
}
