//! Storage-cost and indexing-time experiments: Table 1, Figure 7, Figure 8,
//! Table 3 (EXP 1 and EXP 2 of the paper).

use disks_core::{build_all_indexes, IndexConfig};
use disks_partition::{MultilevelPartitioner, Partitioner};
use disks_roadnet::{RoadNetwork, INF};

use crate::datasets::{load, Dataset, DatasetId, Scale};
use crate::params::Params;
use crate::report::{fmt_bytes, Table};

/// Table 1: dataset summary statistics.
pub fn tab1_datasets(scale: Scale) -> Table {
    let mut t = Table::new(
        "Table 1: Datasets",
        vec!["name".into(), "nodes".into(), "objects".into(), "edges".into(), "keywords".into()],
    );
    for id in [DatasetId::Bri, DatasetId::Aus] {
        let ds = load(id, scale);
        let s = ds.net.stats();
        t.push(vec![
            id.name().into(),
            s.nodes.to_string(),
            s.objects.to_string(),
            s.edges.to_string(),
            s.keywords.to_string(),
        ]);
    }
    t
}

/// Average per-machine index size for one (maxR, #fragments) point.
fn avg_index_bytes(net: &RoadNetwork, k: usize, max_r: u64) -> u64 {
    let partitioning = MultilevelPartitioner::default().partition(net, k);
    let indexes = build_all_indexes(net, &partitioning, &IndexConfig::with_max_r(max_r));
    let total: u64 = indexes.iter().map(|i| i.stats().encoded_bytes as u64).sum();
    total / k as u64
}

/// Figure 7 (a)/(b): average per-machine index size, maxR × #fragments.
pub fn fig7_index_size(ds: &Dataset) -> Table {
    let e = ds.net.avg_edge_weight();
    let mut headers = vec!["maxR/e".to_string()];
    headers.extend(Params::FRAGMENT_COUNTS.iter().map(|k| format!("k={k}")));
    let mut t = Table::new(
        format!("Figure 7: avg index size per machine, {} ({:?})", ds.id.name(), ds.scale),
        headers,
    );
    for &factor in &Params::MAX_R_FACTORS {
        let mut row = vec![factor.to_string()];
        for &k in &Params::FRAGMENT_COUNTS {
            row.push(fmt_bytes(avg_index_bytes(&ds.net, k, factor * e)));
        }
        t.push(row);
    }
    t
}

/// Figure 8: index size vs maxR including maxR = ∞ (AUS, default k = 16).
pub fn fig8_index_size_unbounded(ds: &Dataset, k: usize) -> Table {
    let e = ds.net.avg_edge_weight();
    let mut t = Table::new(
        format!("Figure 8: avg index size vs maxR incl. ∞, {} k={k}", ds.id.name()),
        vec!["maxR/e".into(), "avg bytes/machine".into()],
    );
    for &factor in &Params::MAX_R_FACTORS {
        t.push(vec![factor.to_string(), fmt_bytes(avg_index_bytes(&ds.net, k, factor * e))]);
    }
    t.push(vec!["inf".into(), fmt_bytes(avg_index_bytes(&ds.net, k, INF))]);
    t
}

/// Table 3: per-fragment indexing time (seconds), #fragments × maxR (AUS).
pub fn tab3_indexing_time(ds: &Dataset) -> Table {
    let e = ds.net.avg_edge_weight();
    let factors = [10u64, 20, 40];
    let mut headers = vec!["#fragments".to_string()];
    headers.extend(factors.iter().map(|f| format!("maxR={f}e")));
    let mut t = Table::new(
        format!("Table 3: indexing time per fragment, {} ({:?})", ds.id.name(), ds.scale),
        headers,
    );
    for &k in &[4usize, 8, 12, 16] {
        let mut row = vec![k.to_string()];
        let partitioning = MultilevelPartitioner::default().partition(&ds.net, k);
        for &factor in &factors {
            let indexes =
                build_all_indexes(&ds.net, &partitioning, &IndexConfig::with_max_r(factor * e));
            // "Per-fragment indexing time": the mean across fragments (each
            // fragment is built by one machine in the paper's deployment).
            let total: std::time::Duration = indexes.iter().map(|i| i.stats().build_time).sum();
            let mean = total / k as u32;
            row.push(crate::report::fmt_duration(mean));
        }
        t.push(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tab1_has_both_datasets() {
        let t = tab1_datasets(Scale::Smoke);
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.rows[0][0], "BRI");
        let bri_nodes: usize = t.rows[0][1].parse().unwrap();
        let aus_nodes: usize = t.rows[1][1].parse().unwrap();
        assert!(bri_nodes > 0 && aus_nodes > 0);
    }

    #[test]
    fn fig7_grows_with_max_r() {
        let ds = load(DatasetId::Aus, Scale::Smoke);
        let e = ds.net.avg_edge_weight();
        let small = avg_index_bytes(&ds.net, 4, 5 * e);
        let large = avg_index_bytes(&ds.net, 4, 40 * e);
        assert!(large >= small, "index must not shrink as maxR grows: {small} vs {large}");
        let t = fig7_index_size(&ds);
        assert_eq!(t.rows.len(), Params::MAX_R_FACTORS.len());
    }

    #[test]
    fn fig8_includes_infinity_row() {
        let ds = load(DatasetId::Aus, Scale::Smoke);
        let t = fig8_index_size_unbounded(&ds, 4);
        assert_eq!(t.rows.last().unwrap()[0], "inf");
    }

    #[test]
    fn tab3_renders_grid() {
        let ds = load(DatasetId::Aus, Scale::Smoke);
        let t = tab3_indexing_time(&ds);
        assert_eq!(t.rows.len(), 4);
        assert_eq!(t.headers.len(), 4);
    }
}
