//! Intra-worker parallel evaluation sweep — worker thread counts vs
//! uncached batched-dispatch throughput (`results/BENCH_parallel.json`).
//!
//! Each point builds a fresh cluster with
//! [`ClusterConfig::worker_threads`] pinned to 1, 2 or 4 and pushes the
//! same batched SGKQ stream through it with the coverage cache disabled,
//! so slot evaluation — the work the pool parallelizes — carries the
//! wall-clock. The two-phase compute/commit protocol (DESIGN.md §6k)
//! guarantees the parallel runs are *value-identical* to serial, and this
//! experiment re-asserts the visible half of that on every sweep: answers,
//! wire frames and wire bytes must match across thread counts exactly.
//!
//! Reported per point: throughput, speedup over the serial point, pool
//! busy time (summed per-slot evaluation micros from the
//! [`disks_cluster::WireCost`] timing plane), pool utilization (busy time
//! over machines × threads × wall-clock), per-query latency percentiles,
//! and the per-slot evaluation-latency histogram. Serial workers leave the
//! histogram empty (they spend no attribution effort on the bit-for-bit
//! path), so the histogram doubles as proof the pool actually engaged.
//!
//! The ≥ 2× speedup acceptance bound at 4 threads is only asserted when
//! the host has ≥ 4 cores — on smaller runners the sweep still runs and
//! records honest (≈ 1×) speedups, exercising the parity half alone.

use disks_cluster::message::EVAL_HIST_BUCKETS;
use disks_cluster::{Cluster, ClusterConfig, NetworkModel, QueryOutcome};
use disks_core::{build_all_indexes, DFunction, IndexConfig, NpdIndex};
use disks_partition::{MultilevelPartitioner, Partitioner, Partitioning};
use disks_roadnet::NodeId;

use crate::datasets::Dataset;
use crate::params::Params;
use crate::queries::QueryGenerator;
use crate::report::Table;

/// Worker thread counts swept. 1 is the serial baseline every other point
/// must match byte-for-byte on the value plane.
const THREADS: [usize; 3] = [1, 2, 4];

/// Batched-dispatch window: batch frames carry many distinct slots, which
/// is exactly the fan-out the evaluation pool spreads across threads.
const BATCH_WINDOW: usize = 16;

/// Measured passes per point (best-throughput one reported; answers and
/// wire traffic are deterministic, so reps only de-noise the wall-clock).
const REPS: usize = 3;

/// One worker-thread-count measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelPoint {
    pub threads: usize,
    /// Batched queries/sec, cache disabled.
    pub qps: f64,
    /// `qps / qps(threads=1)`.
    pub speedup: f64,
    /// Summed per-slot evaluation micros across workers (timing plane).
    pub busy_micros: u64,
    /// `busy_micros / (machines × threads × wall-clock)`: how busy the
    /// evaluator threads were. Serial workers count whole-frame evaluation
    /// time as busy; pooled workers sum the per-slot job micros.
    pub utilization: f64,
    /// Per-query service latency percentiles over the measured batch (µs).
    pub p50_micros: u64,
    pub p99_micros: u64,
    /// Per-slot evaluation-latency histogram (log2-µs buckets), summed
    /// across workers. Empty at `threads = 1`.
    pub eval_hist: [u64; EVAL_HIST_BUCKETS],
}

/// Machine-readable summary of the thread sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelSummary {
    pub dataset: String,
    pub queries: usize,
    pub num_keywords: usize,
    pub machines: usize,
    /// Cores the host reported; speedup bounds only bind when ≥ 4.
    pub host_cores: usize,
    pub points: Vec<ParallelPoint>,
}

impl ParallelSummary {
    /// Hand-formatted JSON (the repo carries no serde; the schema is flat
    /// enough that formatting by hand keeps the artifact dependency-free).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"dataset\": \"{}\",\n", self.dataset));
        s.push_str(&format!("  \"queries\": {},\n", self.queries));
        s.push_str(&format!("  \"num_keywords\": {},\n", self.num_keywords));
        s.push_str(&format!("  \"machines\": {},\n", self.machines));
        s.push_str(&format!("  \"host_cores\": {},\n", self.host_cores));
        s.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            let sep = if i + 1 == self.points.len() { "" } else { "," };
            s.push_str(&format!(
                "    {{\"threads\": {}, \"qps\": {:.1}, \"speedup\": {:.3}, \
                 \"busy_micros\": {}, \"utilization\": {:.4}, \"p50_micros\": {}, \
                 \"p99_micros\": {}, \"eval_hist\": [{}]}}{sep}\n",
                p.threads,
                p.qps,
                p.speedup,
                p.busy_micros,
                p.utilization,
                p.p50_micros,
                p.p99_micros,
                p.eval_hist.iter().map(u64::to_string).collect::<Vec<_>>().join(", ")
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// The speedup at a given thread count, if swept.
    pub fn speedup_at(&self, threads: usize) -> Option<f64> {
        self.points.iter().find(|p| p.threads == threads).map(|p| p.speedup)
    }
}

fn build(
    ds: &Dataset,
    partitioning: &Partitioning,
    indexes: Vec<NpdIndex>,
    machines: usize,
    threads: usize,
) -> Cluster {
    Cluster::build(
        &ds.net,
        partitioning,
        indexes,
        ClusterConfig {
            machines: Some(machines),
            network: NetworkModel::instant(),
            // Cache off: slot evaluation (the parallelized work) carries
            // the wall-clock, and the sweep isolates compute scaling.
            coverage_cache_bytes: 0,
            // Pinned so DISKS_BATCH* / DISKS_WORKER_THREADS lane variables
            // cannot change what the sweep measures.
            batch_window: BATCH_WINDOW,
            batch_adaptive: false,
            worker_threads: threads,
            ..ClusterConfig::default()
        },
    )
}

/// One measured pass: answers, wall-clock, link deltas, and the timing
/// plane summed over the batch.
struct MeasuredRun {
    qps: f64,
    results: Vec<Vec<NodeId>>,
    frames: u64,
    bytes: u64,
    busy_micros: u64,
    eval_hist: [u64; EVAL_HIST_BUCKETS],
    p50_micros: u64,
    p99_micros: u64,
}

fn measure_once(cluster: &Cluster, fs: &[DFunction]) -> MeasuredRun {
    let (fr_before, _) = cluster.link_message_totals();
    let (c2w_before, w2c_before) = cluster.link_totals();
    let (outcomes, elapsed) = cluster.run_batched(fs).expect("measured batch");
    assert_eq!(outcomes.len(), fs.len());
    let (fr_after, _) = cluster.link_message_totals();
    let (c2w_after, w2c_after) = cluster.link_totals();
    let mut busy_micros = 0u64;
    let mut eval_hist = [0u64; EVAL_HIST_BUCKETS];
    let mut lat: Vec<u64> = Vec::with_capacity(outcomes.len());
    for o in &outcomes {
        busy_micros += o.stats.total_busy_micros();
        for (d, s) in eval_hist.iter_mut().zip(o.stats.total_eval_hist()) {
            *d += s;
        }
        lat.push(o.stats.wall_time.as_micros() as u64);
    }
    lat.sort_unstable();
    let p50 = lat.get(lat.len() / 2).copied().unwrap_or(0);
    let p99 =
        lat.get((lat.len() * 99 / 100).min(lat.len().saturating_sub(1))).copied().unwrap_or(0);
    MeasuredRun {
        qps: fs.len() as f64 / elapsed.as_secs_f64().max(1e-9),
        results: outcomes.into_iter().map(|o: QueryOutcome| o.results).collect(),
        frames: fr_after - fr_before,
        bytes: (c2w_after - c2w_before) + (w2c_after - w2c_before),
        busy_micros,
        eval_hist,
        p50_micros: p50,
        p99_micros: p99,
    }
}

/// Worker-thread sweep: serial vs pooled evaluation on the same batched
/// stream, with value-plane parity asserted across every thread count.
pub fn parallel(ds: &Dataset, params: &Params) -> (Table, ParallelSummary) {
    let e = ds.net.avg_edge_weight();
    let max_r = params.max_r(e);
    let r = params.r(e).min(max_r);
    let batch = (params.queries_per_point * 10).max(20);
    let mut gen = QueryGenerator::new(&ds.net, 0x9A8A);
    let fs: Vec<DFunction> =
        gen.sgkq_batch(batch, params.num_keywords, r).iter().map(|q| q.to_dfunction()).collect();

    let k = params.num_fragments;
    let machines = k.min(4);
    let partitioning = MultilevelPartitioner::default().partition(&ds.net, k);
    let indexes = build_all_indexes(&ds.net, &partitioning, &IndexConfig::with_max_r(max_r));
    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    let mut t = Table::new(
        format!(
            "Parallel eval: batched SGKQ stream of {} queries (#kw={}, w={BATCH_WINDOW}, \
             {} machines, cache off), {}",
            fs.len(),
            params.num_keywords,
            machines,
            ds.id.name()
        ),
        vec![
            "threads".into(),
            "q/s".into(),
            "speedup".into(),
            "busy".into(),
            "util".into(),
            "p50".into(),
            "p99".into(),
        ],
    );
    let mut summary = ParallelSummary {
        dataset: ds.id.name().to_string(),
        queries: fs.len(),
        num_keywords: params.num_keywords,
        machines,
        host_cores,
        points: Vec::new(),
    };

    // (answers, frames, bytes) of the serial point — the value plane every
    // pooled point must reproduce exactly.
    let mut value_plane: Option<(Vec<Vec<NodeId>>, u64, u64)> = None;
    let mut qps_serial = 0.0f64;
    for &threads in &THREADS {
        let cluster = build(ds, &partitioning, indexes.clone(), machines, threads);
        let _ = cluster.run_batched(&fs).expect("warmup batch");
        let mut best: Option<MeasuredRun> = None;
        for _ in 0..REPS {
            let m = measure_once(&cluster, &fs);
            if best.as_ref().is_none_or(|b| m.qps > b.qps) {
                best = Some(m);
            }
        }
        let m = best.expect("REPS >= 1");
        cluster.shutdown();

        // Value-plane parity across thread counts: same answers, same
        // frames, same bytes — the §6k determinism contract, re-checked on
        // every sweep (the proptests pin the full per-machine ledger).
        match &value_plane {
            None => value_plane = Some((m.results.clone(), m.frames, m.bytes)),
            Some((results, frames, bytes)) => {
                assert_eq!(&m.results, results, "threads={threads}: answers diverged");
                assert_eq!(m.frames, *frames, "threads={threads}: frame count diverged");
                assert_eq!(m.bytes, *bytes, "threads={threads}: wire bytes diverged");
            }
        }

        if threads == 1 {
            qps_serial = m.qps;
        }
        let speedup = if qps_serial > 0.0 { m.qps / qps_serial } else { 0.0 };
        let capacity_micros =
            (machines * threads) as f64 * (fs.len() as f64 / m.qps.max(1e-9)) * 1e6;
        let utilization = m.busy_micros as f64 / capacity_micros.max(1e-9);
        // Acceptance bound: ≥ 2× at 4 threads — only binding on hosts with
        // the cores to show it.
        if threads == 4 && host_cores >= 4 {
            assert!(
                speedup >= 2.0,
                "threads=4 speedup {speedup:.2} below the 2x acceptance bound on a \
                 {host_cores}-core host"
            );
        }
        t.push(vec![
            threads.to_string(),
            format!("{:.0}", m.qps),
            format!("{speedup:.2}x"),
            format!("{}us", m.busy_micros),
            format!("{:.0}%", 100.0 * utilization),
            format!("{}us", m.p50_micros),
            format!("{}us", m.p99_micros),
        ]);
        summary.points.push(ParallelPoint {
            threads,
            qps: m.qps,
            speedup,
            busy_micros: m.busy_micros,
            utilization,
            p50_micros: m.p50_micros,
            p99_micros: m.p99_micros,
            eval_hist: m.eval_hist,
        });
    }
    (t, summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{load, DatasetId, Scale};

    #[test]
    fn thread_sweep_holds_value_parity_and_reports_pool_timing() {
        let ds = load(DatasetId::Aus, Scale::Smoke);
        let params =
            Params { num_fragments: 4, queries_per_point: 2, num_keywords: 3, ..Params::default() };
        let (t, summary) = parallel(&ds, &params);
        assert_eq!(t.rows.len(), THREADS.len());
        assert_eq!(summary.points.len(), THREADS.len());
        let serial = &summary.points[0];
        assert_eq!(serial.threads, 1);
        assert!((serial.speedup - 1.0).abs() < 1e-9);
        // Serial workers take the bit-for-bit path: no per-slot
        // attribution, so the histogram stays empty (busy time still
        // covers whole-frame evaluation).
        assert_eq!(serial.eval_hist.iter().sum::<u64>(), 0);
        assert!(serial.busy_micros > 0);
        for p in &summary.points {
            assert!(p.qps > 0.0);
            assert!(p.p50_micros <= p.p99_micros);
            if p.threads > 1 {
                // The pool attributes every evaluated slot: with the cache
                // off every slot is a store miss, so the histogram must
                // have recorded entries and busy time must be nonzero.
                assert!(p.eval_hist.iter().sum::<u64>() > 0, "threads={}: empty hist", p.threads);
                assert!(p.busy_micros > 0, "threads={}: no busy time", p.threads);
                assert!(p.utilization > 0.0 && p.utilization <= 1.0 + 1e-9);
            }
        }
        let json = summary.to_json();
        assert!(json.contains("\"host_cores\""));
        assert!(json.contains("\"speedup\""));
        assert!(json.contains("\"busy_micros\""));
        assert!(json.contains("\"utilization\""));
        assert!(json.contains("\"eval_hist\""));
        assert!(json.trim_start().starts_with('{') && json.trim_end().ends_with('}'));
    }
}
