//! Ablation experiments for the design choices DESIGN.md calls out.
//!
//! 1. **Minimality (Theorems 2/4)** — rule-based SC/DL vs the naive
//!    standard index (§3.3/§3.4 strawman: all portal-pair shortcuts, all
//!    `(external, portal)` pairs). Measures the size gap and the query-time
//!    effect through the Theorem 5 α/β terms.
//! 2. **Partitioner choice** — multilevel vs geometric vs region-growing:
//!    cut edges → portals → index size → query time.
//! 3. **Keyword aggregation (§3.7)** — per-keyword portal minima vs
//!    scanning node-keyed DL entries at query time.

use std::time::Duration;

use disks_core::{
    build_all_indexes, build_naive_index, DFunction, FragmentEngine, IndexConfig, NpdIndex,
};
use disks_partition::{
    BfsPartitioner, GridPartitioner, MultilevelPartitioner, PartitionMetrics, Partitioner,
    Partitioning,
};
use disks_roadnet::RoadNetwork;

use crate::datasets::Dataset;
use crate::params::Params;
use crate::queries::QueryGenerator;
use crate::report::{fmt_bytes, fmt_duration, median_duration, Table};

fn total_bytes(indexes: &[NpdIndex]) -> u64 {
    indexes.iter().map(|i| i.stats().encoded_bytes as u64).sum()
}

fn total_distances(indexes: &[NpdIndex]) -> usize {
    indexes.iter().map(NpdIndex::distances_recorded).sum()
}

fn median_response(
    net: &RoadNetwork,
    partitioning: &Partitioning,
    indexes: &[NpdIndex],
    fs: &[DFunction],
) -> Duration {
    let mut engines: Vec<FragmentEngine> = indexes
        .iter()
        .map(|i| FragmentEngine::new(net, partitioning, i).expect("engine"))
        .collect();
    // Warmup.
    for f in fs {
        for e in &mut engines {
            let _ = e.evaluate(f).expect("within maxR");
        }
    }
    let times: Vec<Duration> = fs
        .iter()
        .map(|f| {
            engines
                .iter_mut()
                .map(|e| e.evaluate(f).expect("within maxR").1.elapsed)
                .max()
                .unwrap_or(Duration::ZERO)
        })
        .collect();
    median_duration(&times)
}

/// Ablation 1: rule-based (minimal) vs naive standard index.
pub fn ablation_minimality(ds: &Dataset, params: &Params) -> Table {
    let e = ds.net.avg_edge_weight();
    let max_r = params.max_r(e);
    let cfg = IndexConfig::with_max_r(max_r);
    let k = params.num_fragments;
    let partitioning = MultilevelPartitioner::default().partition(&ds.net, k);

    let minimal: Vec<NpdIndex> = build_all_indexes(&ds.net, &partitioning, &cfg);
    let naive: Vec<NpdIndex> = partitioning
        .fragment_ids()
        .map(|f| build_naive_index(&ds.net, &partitioning, f, &cfg))
        .collect();

    let mut gen = QueryGenerator::new(&ds.net, 0xAB1);
    let fs: Vec<DFunction> = gen
        .sgkq_batch(params.queries_per_point, params.num_keywords, params.r(e).min(max_r))
        .iter()
        .map(|q| q.to_dfunction())
        .collect();
    let t_min = median_response(&ds.net, &partitioning, &minimal, &fs);
    let t_naive = median_response(&ds.net, &partitioning, &naive, &fs);

    let mut t = Table::new(
        format!("Ablation: Rule 1/2 minimal index vs naive standard index, {} k={k}", ds.id.name()),
        vec![
            "variant".into(),
            "distances".into(),
            "bytes".into(),
            "avg |SC| (β)".into(),
            "median response".into(),
        ],
    );
    for (name, indexes, time) in
        [("minimal (Thm 2/4)", &minimal, t_min), ("naive standard", &naive, t_naive)]
    {
        let beta: usize = indexes.iter().map(|i| i.shortcuts().len()).sum::<usize>() / k;
        t.push(vec![
            name.into(),
            total_distances(indexes).to_string(),
            fmt_bytes(total_bytes(indexes)),
            beta.to_string(),
            fmt_duration(time),
        ]);
    }
    t
}

/// Ablation 2: effect of the partitioner on cut, index size, and query time.
pub fn ablation_partitioner(ds: &Dataset, params: &Params) -> Table {
    let e = ds.net.avg_edge_weight();
    let max_r = params.max_r(e);
    let cfg = IndexConfig::with_max_r(max_r);
    let k = params.num_fragments;
    let mut gen = QueryGenerator::new(&ds.net, 0xAB2);
    let fs: Vec<DFunction> = gen
        .sgkq_batch(params.queries_per_point, params.num_keywords, params.r(e).min(max_r))
        .iter()
        .map(|q| q.to_dfunction())
        .collect();

    let mut t = Table::new(
        format!("Ablation: partitioner choice, {} k={k}", ds.id.name()),
        vec![
            "partitioner".into(),
            "cut edges".into(),
            "portals".into(),
            "balance".into(),
            "index bytes".into(),
            "median response".into(),
        ],
    );
    let partitionings: Vec<(&str, Partitioning)> = vec![
        ("multilevel (ours)", MultilevelPartitioner::default().partition(&ds.net, k)),
        ("geometric kd", GridPartitioner.partition(&ds.net, k)),
        ("region growing", BfsPartitioner::default().partition(&ds.net, k)),
    ];
    for (name, partitioning) in &partitionings {
        let metrics = PartitionMetrics::compute(&ds.net, partitioning);
        let indexes = build_all_indexes(&ds.net, partitioning, &cfg);
        let time = median_response(&ds.net, partitioning, &indexes, &fs);
        t.push(vec![
            (*name).into(),
            metrics.cut_edges.to_string(),
            metrics.total_portals.to_string(),
            format!("{:.3}", metrics.balance),
            fmt_bytes(total_bytes(&indexes)),
            fmt_duration(time),
        ]);
    }
    t
}

/// Ablation 3: §3.7 keyword aggregation vs scanning node-keyed DL entries.
/// Reported as the per-query α (pairs touched) and lookup time of the two
/// access paths over the same index.
pub fn ablation_keyword_aggregation(ds: &Dataset, params: &Params) -> Table {
    let e = ds.net.avg_edge_weight();
    let max_r = params.max_r(e);
    let k = params.num_fragments;
    let partitioning = MultilevelPartitioner::default().partition(&ds.net, k);
    let indexes = build_all_indexes(&ds.net, &partitioning, &IndexConfig::with_max_r(max_r));

    let mut gen = QueryGenerator::new(&ds.net, 0xAB3);
    let queries = gen.sgkq_batch(params.queries_per_point, params.num_keywords, max_r);

    // Aggregated path: α = keyword-portal pairs with d ≤ r (what the engine
    // uses). Scan path: walk every node-keyed entry, test its keywords,
    // and collect the same seeds — the cost without the §3.7 materialization.
    let mut agg_pairs = 0u64;
    let mut scan_pairs = 0u64;
    let mut agg_time = Duration::ZERO;
    let mut scan_time = Duration::ZERO;
    for q in &queries {
        for idx in &indexes {
            for &kw in &q.keywords {
                let t0 = std::time::Instant::now();
                let list = idx.keyword_portal_list(kw);
                let mut n = 0u64;
                for &(_, d) in list {
                    if d > q.radius {
                        break;
                    }
                    n += 1;
                }
                agg_time += t0.elapsed();
                agg_pairs += n;

                let t0 = std::time::Instant::now();
                let mut m = 0u64;
                for (node, pairs) in idx.dl_entries() {
                    if ds.net.contains_keyword(node, kw) {
                        for &(_, d) in pairs {
                            if d <= q.radius {
                                m += 1;
                            }
                        }
                    }
                }
                scan_time += t0.elapsed();
                scan_pairs += m;
            }
        }
    }
    let nq = queries.len().max(1) as u64;
    let mut t = Table::new(
        format!("Ablation: §3.7 keyword aggregation vs DL-entry scan, {} k={k}", ds.id.name()),
        vec!["access path".into(), "pairs touched/query".into(), "lookup time/query".into()],
    );
    t.push(vec![
        "keyword→portal minima (§3.7)".into(),
        (agg_pairs / nq).to_string(),
        fmt_duration(agg_time / nq as u32),
    ]);
    t.push(vec![
        "scan node-keyed DL".into(),
        (scan_pairs / nq).to_string(),
        fmt_duration(scan_time / nq as u32),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{load, DatasetId, Scale};

    fn smoke_params() -> Params {
        Params { num_fragments: 3, queries_per_point: 2, num_keywords: 3, ..Params::default() }
    }

    #[test]
    fn minimality_ablation_shows_smaller_minimal_index() {
        let ds = load(DatasetId::Aus, Scale::Smoke);
        let t = ablation_minimality(&ds, &smoke_params());
        assert_eq!(t.rows.len(), 2);
        let minimal: usize = t.rows[0][1].parse().unwrap();
        let naive: usize = t.rows[1][1].parse().unwrap();
        assert!(minimal <= naive, "minimal {minimal} must not exceed naive {naive}");
    }

    #[test]
    fn partitioner_ablation_covers_all_three() {
        let ds = load(DatasetId::Aus, Scale::Smoke);
        let t = ablation_partitioner(&ds, &smoke_params());
        assert_eq!(t.rows.len(), 3);
    }

    #[test]
    fn aggregation_ablation_touches_fewer_pairs() {
        let ds = load(DatasetId::Aus, Scale::Smoke);
        let t = ablation_keyword_aggregation(&ds, &smoke_params());
        assert_eq!(t.rows.len(), 2);
    }
}
