//! Query-time experiments: Figures 9–15 (EXP 3–6 of the paper).

use disks_core::{DFunction, IndexConfig};
use disks_roadnet::INF;

use crate::datasets::Dataset;
use crate::params::Params;
use crate::queries::QueryGenerator;
use crate::report::{fmt_duration, Table};

use super::{mean_centralized, Deployment};

fn sgkq_dfunctions(
    ds: &Dataset,
    seed: u64,
    count: usize,
    num_keywords: usize,
    r: u64,
) -> Vec<DFunction> {
    let mut gen = QueryGenerator::new(&ds.net, seed);
    gen.sgkq_batch(count, num_keywords, r).iter().map(|q| q.to_dfunction()).collect()
}

/// Figure 9 (EXP 5): query time vs maxR (including ∞) — the maxR value
/// should have very limited effect on query time.
pub fn fig9_query_time_vs_maxr(ds: &Dataset, params: &Params) -> Table {
    let e = ds.net.avg_edge_weight();
    // r must be servable by the smallest index: use the smallest maxR.
    let r = Params::MAX_R_FACTORS[0] * e;
    let fs = sgkq_dfunctions(ds, 0x9001, params.queries_per_point, params.num_keywords, r);
    let mut t = Table::new(
        format!(
            "Figure 9: query time vs maxR, {} (r={}e, k={})",
            ds.id.name(),
            Params::MAX_R_FACTORS[0],
            params.num_fragments
        ),
        vec!["maxR/e".into(), "avg response".into()],
    );
    for &factor in &Params::MAX_R_FACTORS {
        let mut dep = Deployment::prepare(
            &ds.net,
            params.num_fragments,
            &IndexConfig::with_max_r(factor * e),
        );
        t.push(vec![factor.to_string(), fmt_duration(dep.mean_response(&fs))]);
    }
    let mut dep = Deployment::prepare(&ds.net, params.num_fragments, &IndexConfig::unbounded());
    t.push(vec!["inf".into(), fmt_duration(dep.mean_response(&fs))]);
    let _ = INF;
    t
}

/// Figures 10/11 (EXP 3): query time vs #keywords, distributed vs the
/// "1 fragment" centralized reference.
pub fn fig10_11_keywords(ds: &Dataset, params: &Params) -> Table {
    let e = ds.net.avg_edge_weight();
    let max_r = params.max_r(e);
    let r = params.r(e).min(max_r);
    let mut dep =
        Deployment::prepare(&ds.net, params.num_fragments, &IndexConfig::with_max_r(max_r));
    let mut t = Table::new(
        format!(
            "Figure 10/11: query time vs #keywords, {} (k={}, r=maxR)",
            ds.id.name(),
            params.num_fragments
        ),
        vec!["#keywords".into(), "distributed".into(), "1 fragment".into()],
    );
    for &nk in &Params::KEYWORD_COUNTS {
        let fs = sgkq_dfunctions(ds, 0xA000 + nk as u64, params.queries_per_point, nk, r);
        if fs.is_empty() {
            continue;
        }
        let dist = dep.mean_response(&fs);
        let central = mean_centralized(&ds.net, &fs);
        t.push(vec![nk.to_string(), fmt_duration(dist), fmt_duration(central)]);
    }
    t
}

/// Figures 12/13 (EXP 6): query time vs #fragments — response time should
/// roughly halve when fragments double.
pub fn fig12_13_fragments(ds: &Dataset, params: &Params) -> Table {
    let e = ds.net.avg_edge_weight();
    let max_r = params.max_r(e);
    let r = params.r(e).min(max_r);
    let fs = sgkq_dfunctions(ds, 0xC000, params.queries_per_point, params.num_keywords, r);
    let mut t = Table::new(
        format!(
            "Figure 12/13: query time vs #fragments, {} (#kw={}, r=maxR)",
            ds.id.name(),
            params.num_keywords
        ),
        vec!["#fragments".into(), "avg response".into()],
    );
    for &k in &Params::FRAGMENT_COUNTS {
        let mut dep = Deployment::prepare(&ds.net, k, &IndexConfig::with_max_r(max_r));
        t.push(vec![k.to_string(), fmt_duration(dep.mean_response(&fs))]);
    }
    t
}

/// Figures 14/15 (EXP 4): query time vs r ∈ {maxR/4, maxR/3, maxR/2, maxR},
/// distributed vs centralized.
pub fn fig14_15_radius(ds: &Dataset, params: &Params) -> Table {
    let e = ds.net.avg_edge_weight();
    let max_r = params.max_r(e);
    let mut dep =
        Deployment::prepare(&ds.net, params.num_fragments, &IndexConfig::with_max_r(max_r));
    let mut t = Table::new(
        format!(
            "Figure 14/15: query time vs r, {} (#kw={}, k={})",
            ds.id.name(),
            params.num_keywords,
            params.num_fragments
        ),
        vec!["r".into(), "distributed".into(), "1 fragment".into()],
    );
    // R_DIVISORS is [4, 3, 2, 1]: iterating in order gives ascending radii.
    for &div in Params::R_DIVISORS.iter() {
        let r = max_r / div;
        let fs =
            sgkq_dfunctions(ds, 0xD000 + div, params.queries_per_point, params.num_keywords, r);
        if fs.is_empty() {
            continue;
        }
        let dist = dep.mean_response(&fs);
        let central = mean_centralized(&ds.net, &fs);
        let label = if div == 1 { "maxR".to_string() } else { format!("maxR/{div}") };
        t.push(vec![label, fmt_duration(dist), fmt_duration(central)]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{load, DatasetId, Scale};

    fn smoke_params() -> Params {
        Params { num_fragments: 4, queries_per_point: 2, num_keywords: 3, ..Params::default() }
    }

    #[test]
    fn fig9_covers_all_maxr_points() {
        let ds = load(DatasetId::Aus, Scale::Smoke);
        let t = fig9_query_time_vs_maxr(&ds, &smoke_params());
        assert_eq!(t.rows.len(), Params::MAX_R_FACTORS.len() + 1);
        assert_eq!(t.rows.last().unwrap()[0], "inf");
    }

    #[test]
    fn fig10_has_distributed_and_central_columns() {
        let ds = load(DatasetId::Aus, Scale::Smoke);
        let t = fig10_11_keywords(&ds, &smoke_params());
        assert!(!t.rows.is_empty());
        assert_eq!(t.headers.len(), 3);
    }

    #[test]
    fn fig12_covers_fragment_sweep() {
        let ds = load(DatasetId::Aus, Scale::Smoke);
        let t = fig12_13_fragments(&ds, &smoke_params());
        assert_eq!(t.rows.len(), Params::FRAGMENT_COUNTS.len());
    }

    #[test]
    fn fig14_orders_radii_ascending() {
        let ds = load(DatasetId::Aus, Scale::Smoke);
        let t = fig14_15_radius(&ds, &smoke_params());
        assert_eq!(t.rows.first().unwrap()[0], "maxR/4");
        assert_eq!(t.rows.last().unwrap()[0], "maxR");
    }
}
