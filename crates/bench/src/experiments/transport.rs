//! Transport overhead experiment — what real sockets cost over the
//! in-process channel links, on an otherwise identical cluster.
//!
//! The `Link` seam makes the transport invisible to the protocol, so the
//! same pipelined SGKQ batch is pushed through a channel-linked and a
//! TCP-linked cluster at the fixed headline batch window (16) and under
//! adaptive streaming dispatch. Byte and frame ledgers are transport-
//! invariant (framing prefixes and keepalives are never counted), so
//! `bytes_per_query` doubles as a cross-transport consistency check while
//! qps/p50/p99 expose the socket's real cost: syscalls, copies, and the
//! pump threads' handoffs. Besides the [`Table`], the experiment returns a
//! [`TransportSummary`] that `repro` serializes to
//! `results/BENCH_transport.json`.

use disks_cluster::{Cluster, ClusterConfig, NetworkModel, TransportKind};
use disks_core::{build_all_indexes, DFunction, IndexConfig, NpdIndex};
use disks_partition::{MultilevelPartitioner, Partitioner, Partitioning};

use crate::datasets::Dataset;
use crate::params::Params;
use crate::queries::QueryGenerator;
use crate::report::Table;

/// The fixed batch window the non-adaptive rows are measured at — the same
/// headline window the throughput experiment reports.
const WINDOW: usize = 16;

/// Measured pipelined batches per point; the best-throughput one is kept
/// (the experiment compares transports, not host scheduling).
const MEASURED_REPS: usize = 3;

/// One transport × dispatch-mode measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct TransportPoint {
    /// "channel" or "tcp".
    pub transport: String,
    /// "window16" or "adaptive".
    pub mode: String,
    pub qps: f64,
    /// Per-query service latency percentiles over the measured batch (µs).
    pub p50_micros: u64,
    pub p99_micros: u64,
    /// Protocol bytes (both directions) per query over the measured batch —
    /// transport-invariant by construction.
    pub bytes_per_query: f64,
    /// Coordinator→worker bytes alone.
    pub c2w_bytes_per_query: f64,
}

/// Machine-readable summary of the transport comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct TransportSummary {
    pub dataset: String,
    pub queries: usize,
    pub machines: usize,
    pub points: Vec<TransportPoint>,
}

impl TransportSummary {
    /// The TCP/channel throughput ratio for one mode, if both rows exist.
    pub fn tcp_ratio(&self, mode: &str) -> Option<f64> {
        let chan = self.points.iter().find(|p| p.transport == "channel" && p.mode == mode)?;
        let tcp = self.points.iter().find(|p| p.transport == "tcp" && p.mode == mode)?;
        (chan.qps > 0.0).then(|| tcp.qps / chan.qps)
    }

    /// Hand-formatted JSON (the repo carries no serde).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"dataset\": \"{}\",\n", self.dataset));
        s.push_str(&format!("  \"queries\": {},\n", self.queries));
        s.push_str(&format!("  \"machines\": {},\n", self.machines));
        s.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            let sep = if i + 1 == self.points.len() { "" } else { "," };
            s.push_str(&format!(
                "    {{\"transport\": \"{}\", \"mode\": \"{}\", \"qps\": {:.1}, \
                 \"p50_micros\": {}, \"p99_micros\": {}, \"bytes_per_query\": {:.1}, \
                 \"c2w_bytes_per_query\": {:.1}}}{sep}\n",
                p.transport,
                p.mode,
                p.qps,
                p.p50_micros,
                p.p99_micros,
                p.bytes_per_query,
                p.c2w_bytes_per_query
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

fn build(
    ds: &Dataset,
    partitioning: &Partitioning,
    indexes: Vec<NpdIndex>,
    machines: usize,
    transport: TransportKind,
    adaptive: bool,
) -> Cluster {
    Cluster::build(
        &ds.net,
        partitioning,
        indexes,
        ClusterConfig {
            machines: Some(machines),
            network: NetworkModel::instant(),
            coverage_cache_bytes: 0,
            batch_window: WINDOW,
            batch_adaptive: adaptive,
            // Non-binding guards, as in the throughput sweep: closed-loop
            // batches backlog every query at dispatch, so a binding target
            // would measure the guard instead of the transport.
            batch_window_ms: std::time::Duration::from_millis(100),
            batch_p99_target: std::time::Duration::from_secs(30),
            transport,
            ..ClusterConfig::default()
        },
    )
}

/// (p50, p99) of a latency sample in µs; (0, 0) on an empty sample.
fn percentiles(mut lat: Vec<u64>) -> (u64, u64) {
    if lat.is_empty() {
        return (0, 0);
    }
    lat.sort_unstable();
    (lat[lat.len() / 2], lat[(lat.len() * 99 / 100).min(lat.len() - 1)])
}

fn measure_point(
    ds: &Dataset,
    partitioning: &Partitioning,
    indexes: &[NpdIndex],
    machines: usize,
    transport: TransportKind,
    adaptive: bool,
    fs: &[DFunction],
) -> TransportPoint {
    let cluster = build(ds, partitioning, indexes.to_vec(), machines, transport, adaptive);
    let _ = cluster.run_pipelined(fs).expect("warmup batch");
    let mut best: Option<(f64, u64, u64, u64, u64)> = None;
    for _ in 0..MEASURED_REPS {
        let _ = cluster.take_service_latencies();
        let (c2w_before, w2c_before) = cluster.link_totals();
        let (results, elapsed) = cluster.run_pipelined(fs).expect("measured batch");
        assert_eq!(results.len(), fs.len());
        let (c2w_after, w2c_after) = cluster.link_totals();
        let lat: Vec<u64> =
            cluster.take_service_latencies().iter().map(|d| d.as_micros() as u64).collect();
        let (p50, p99) = percentiles(lat);
        let qps = fs.len() as f64 / elapsed.as_secs_f64().max(1e-9);
        let c2w = c2w_after - c2w_before;
        let w2c = w2c_after - w2c_before;
        if best.as_ref().is_none_or(|b| qps > b.0) {
            best = Some((qps, p50, p99, c2w, w2c));
        }
    }
    cluster.shutdown();
    let (qps, p50_micros, p99_micros, c2w, w2c) = best.expect("at least one measured batch");
    TransportPoint {
        transport: match transport {
            TransportKind::Channel => "channel".into(),
            TransportKind::Tcp => "tcp".into(),
        },
        mode: if adaptive { "adaptive".into() } else { format!("window{WINDOW}") },
        qps,
        p50_micros,
        p99_micros,
        bytes_per_query: (c2w + w2c) as f64 / fs.len() as f64,
        c2w_bytes_per_query: c2w as f64 / fs.len() as f64,
    }
}

/// Channel vs TCP on the same pipelined batch, fixed window and adaptive.
pub fn transport(ds: &Dataset, params: &Params) -> (Table, TransportSummary) {
    let e = ds.net.avg_edge_weight();
    let max_r = params.max_r(e);
    let r = params.r(e).min(max_r);
    let batch = (params.queries_per_point * 10).max(20);
    let mut gen = QueryGenerator::new(&ds.net, 0x7A95);
    let fs: Vec<DFunction> =
        gen.sgkq_batch(batch, params.num_keywords, r).iter().map(|q| q.to_dfunction()).collect();

    let k = params.num_fragments;
    let machines = k.min(4);
    let partitioning = MultilevelPartitioner::default().partition(&ds.net, k);
    let indexes = build_all_indexes(&ds.net, &partitioning, &IndexConfig::with_max_r(max_r));

    let mut summary = TransportSummary {
        dataset: ds.id.name().to_string(),
        queries: fs.len(),
        machines,
        points: Vec::new(),
    };
    let mut t = Table::new(
        format!(
            "Transport overhead: pipelined SGKQ batch of {} queries, {} machines, {}",
            fs.len(),
            machines,
            ds.id.name()
        ),
        vec![
            "transport".into(),
            "mode".into(),
            "q/s".into(),
            "p50".into(),
            "p99".into(),
            "B/query".into(),
            "c2w B/query".into(),
        ],
    );
    for adaptive in [false, true] {
        for transport in [TransportKind::Channel, TransportKind::Tcp] {
            let p = measure_point(ds, &partitioning, &indexes, machines, transport, adaptive, &fs);
            t.push(vec![
                p.transport.clone(),
                p.mode.clone(),
                format!("{:.0}", p.qps),
                format!("{}us", p.p50_micros),
                format!("{}us", p.p99_micros),
                format!("{:.0}", p.bytes_per_query),
                format!("{:.0}", p.c2w_bytes_per_query),
            ]);
            summary.points.push(p);
        }
    }
    (t, summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{load, DatasetId, Scale};

    #[test]
    fn transport_comparison_reports_both_links_with_invariant_ledgers() {
        let ds = load(DatasetId::Aus, Scale::Smoke);
        let params =
            Params { num_fragments: 4, queries_per_point: 2, num_keywords: 3, ..Params::default() };
        let (t, summary) = transport(&ds, &params);
        assert_eq!(t.rows.len(), 4);
        assert_eq!(summary.points.len(), 4);
        for p in &summary.points {
            assert!(p.qps > 0.0, "{p:?}");
            assert!(p.p50_micros <= p.p99_micros, "{p:?}");
            assert!(p.bytes_per_query > 0.0, "{p:?}");
        }
        // The protocol ledger is transport-invariant: at the fixed window,
        // channel and TCP ship byte-identical dispatches and responses.
        let fixed: Vec<_> = summary.points.iter().filter(|p| p.mode == "window16").collect();
        assert_eq!(fixed.len(), 2);
        assert_eq!(fixed[0].bytes_per_query, fixed[1].bytes_per_query, "ledger parity");
        assert_eq!(fixed[0].c2w_bytes_per_query, fixed[1].c2w_bytes_per_query);
        assert!(summary.tcp_ratio("window16").is_some());
        assert!(summary.tcp_ratio("adaptive").is_some());
        let json = summary.to_json();
        assert!(json.contains("\"transport\": \"tcp\""));
        assert!(json.contains("\"mode\": \"adaptive\""));
        assert!(json.contains("\"bytes_per_query\""));
        assert!(json.trim_start().starts_with('{') && json.trim_end().ends_with('}'));
    }
}
