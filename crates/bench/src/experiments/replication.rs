//! Replication sweep — hot-fragment replication vs goodput and the
//! Theorem 6 unbalance factor U on a clustered-Zipf skewed workload
//! (`results/BENCH_replication.json`).
//!
//! The paper pins one fragment per machine, so a spatially clustered
//! workload (Zipf-sampled keywords that all live in one fragment — the
//! city-center pattern the generator's keyword clustering produces)
//! bottlenecks on that fragment's host while the other machines idle:
//! exactly what the Theorem 6 unbalance factor measures. The sweep holds
//! the machine count fixed and adds `r ∈ {0, 1, 2}` replicas of every
//! fragment's engine ([`ClusterConfig::replicas`]); least-loaded routing
//! then rotates consecutive dispatch windows of the hot fragment across
//! its `r + 1` hosts, which chew on the stream concurrently.
//!
//! **Workload.** Keywords are scored by how concentrated their object
//! occurrences are in a single fragment; the fragment with the largest
//! pool of concentrated keywords becomes the *hot* fragment, and queries
//! Zipf-sample 1–2 keywords from its pool. A probe run on the unreplicated
//! cluster measures true per-fragment compute, which both seeds the
//! replica placement ([`ClusterConfig::placement_heat`]) and is reported
//! as `hot_share`.
//!
//! **Metrics.** Goodput = queries per second of the *modeled distributed
//! makespan*, per the crate's measurement methodology ("the response time
//! is determined by the slowest task" — see the [`experiments`]
//! preamble): the slowest machine's attributed work over the pass, in the
//! deterministic Theorem 5 counters (settled nodes + coverage nodes,
//! credited to the replica that served each response), converted to time
//! by the per-unit cost calibrated on the uncontended probe run. Work
//! counters rather than per-task timers because the worker threads
//! time-slice on however many cores the runner has — under contention a
//! timer charges a machine for time spent descheduled, which would
//! penalize exactly the concurrency replication creates. The threaded
//! wall-clock q/s is reported alongside but measures the host, not the
//! cluster: on a single-core runner spreading work across machines cannot
//! shorten the threaded wall even though it shortens every real
//! deployment's. Best of [`REPS`] passes; the coverage cache is disabled
//! so evaluation cost, not memoization, carries the skew. U = the
//! Theorem 6 unbalance factor over the best pass, max/min machine work
//! in the same deterministic counters (the timer-based
//! [`Cluster::unbalance_factor`] reads the same ratio cluster-lifetime,
//! which the throughput and overload experiments report).
//!
//! [`experiments`]: crate::experiments
//!
//! [`ClusterConfig::replicas`]: disks_cluster::ClusterConfig::replicas
//! [`ClusterConfig::placement_heat`]: disks_cluster::ClusterConfig::placement_heat
//! [`Cluster::unbalance_factor`]: disks_cluster::Cluster::unbalance_factor

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use disks_cluster::{Cluster, ClusterConfig, NetworkModel, RoutePolicy};
use disks_core::{build_all_indexes, DFunction, IndexConfig, NpdIndex, SgkQuery};
use disks_partition::{MultilevelPartitioner, Partitioner, Partitioning};
use disks_roadnet::zipf::Zipf;
use disks_roadnet::KeywordId;

use crate::datasets::Dataset;
use crate::params::Params;
use crate::report::Table;

/// Replica counts swept (extra engine copies per fragment).
const REPLICA_COUNTS: [usize; 3] = [0, 1, 2];

/// Query radius in average edge lengths: large enough that the hot
/// fragment's coverage Dijkstras dominate coordinator-side dispatch and
/// merge costs — replication can only relieve worker compute.
const R_FACTOR: u64 = 20;

/// Batched-dispatch window (identical across replica counts).
const BATCH_WINDOW: usize = 16;

/// Measured passes per replica count; the stream outcome is deterministic,
/// so repetition only de-noises the wall-clock — the fastest pass wins.
const REPS: usize = 3;

/// Minimum fraction of a keyword's occurrences inside its home fragment
/// for it to join the clustered pool (relaxed automatically when the
/// partitioning cuts every keyword's neighborhood).
const CONCENTRATION_FLOOR: f64 = 0.6;

/// One replica-count measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicationPoint {
    /// Extra engine copies per fragment (0 = the paper's single owner).
    pub replicas: usize,
    /// Queries per second of the modeled distributed makespan — the
    /// slowest machine's attributed compute over the best pass.
    pub goodput: f64,
    /// Queries per second of threaded wall-clock on the same pass
    /// (host-bound: reflects the runner's cores, not the cluster).
    pub wall_qps: f64,
    /// Theorem 6 unbalance factor U over the best pass: max/min machine
    /// work in the same deterministic counters as `goodput` (the cluster's
    /// timer-based [`unbalance_factor`] reads the same ratio but inherits
    /// scheduler noise on a contended runner).
    ///
    /// [`unbalance_factor`]: disks_cluster::Cluster::unbalance_factor
    pub unbalance: f64,
    /// Narrowed retries over the point's lifetime (0 on a quiet machine).
    pub retries: u64,
    /// Retries moved to a different replica (0 without faults).
    pub reroutes: u64,
    /// Coordinator→worker frames over the measured pass.
    pub frames: u64,
}

/// Machine-readable summary of the replication sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicationSummary {
    pub dataset: String,
    /// Queries per measured pass.
    pub queries: usize,
    /// Machines (held equal across every point).
    pub machines: usize,
    /// The fragment the clustered workload concentrates on.
    pub hot_fragment: u32,
    /// Fraction of probe-run compute spent on the hot fragment.
    pub hot_share: f64,
    pub points: Vec<ReplicationPoint>,
}

impl ReplicationSummary {
    /// Goodput of the `replicas == r` point, if measured.
    pub fn goodput_at(&self, r: usize) -> Option<f64> {
        self.points.iter().find(|p| p.replicas == r).map(|p| p.goodput)
    }

    /// Hand-formatted JSON (the repo carries no serde).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"dataset\": \"{}\",\n", self.dataset));
        s.push_str(&format!("  \"queries\": {},\n", self.queries));
        s.push_str(&format!("  \"machines\": {},\n", self.machines));
        s.push_str(&format!("  \"hot_fragment\": {},\n", self.hot_fragment));
        s.push_str(&format!("  \"hot_share\": {:.4},\n", self.hot_share));
        s.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            let sep = if i + 1 == self.points.len() { "" } else { "," };
            s.push_str(&format!(
                "    {{\"replicas\": {}, \"goodput\": {:.1}, \"wall_qps\": {:.1}, \
                 \"unbalance\": {:.3}, \"retries\": {}, \"reroutes\": {}, \
                 \"frames\": {}}}{sep}\n",
                p.replicas, p.goodput, p.wall_qps, p.unbalance, p.retries, p.reroutes, p.frames
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// The clustered-Zipf stream: keywords whose occurrences concentrate in
/// one fragment, ranked by frequency and Zipf-sampled — every query's
/// heavy coverage work lands on the same (hot) fragment.
fn clustered_stream(ds: &Dataset, partitioning: &Partitioning, n: usize) -> (Vec<SgkQuery>, u32) {
    let net = &ds.net;
    let k = partitioning.num_fragments();
    let freqs = net.keyword_frequencies();
    // Home fragment and concentration of every occurring keyword.
    let mut homed: Vec<(usize, f64, usize)> = Vec::new(); // (home, conc, kw)
    for (kw, &freq) in freqs.iter().enumerate() {
        if freq == 0 {
            continue;
        }
        let mut per_frag = vec![0usize; k];
        for &node in net.nodes_with_keyword(KeywordId(kw as u32)) {
            per_frag[partitioning.fragment_of(node).index()] += 1;
        }
        let (home, &count) = per_frag.iter().enumerate().max_by_key(|&(_, &c)| c).expect("k >= 1");
        homed.push((home, count as f64 / freq as f64, kw));
    }
    // The fragment with the largest concentrated pool becomes the hot one;
    // relax the floor if the partitioning cut every keyword's neighborhood.
    let mut floor = CONCENTRATION_FLOOR;
    let (hot, mut pool) = loop {
        let mut pools: Vec<Vec<usize>> = vec![Vec::new(); k];
        for &(home, conc, kw) in &homed {
            if conc >= floor {
                pools[home].push(kw);
            }
        }
        let (hot, pool) =
            pools.into_iter().enumerate().max_by_key(|(_, p)| p.len()).expect("k >= 1");
        if !pool.is_empty() || floor <= 0.0 {
            break (hot, pool);
        }
        floor -= 0.2;
    };
    assert!(!pool.is_empty(), "no keywords at all — degenerate dataset");
    pool.sort_unstable_by_key(|&kw| std::cmp::Reverse(freqs[kw]));
    pool.truncate(10);

    let zipf = Zipf::new(pool.len(), 1.0);
    let r = R_FACTOR * net.avg_edge_weight();
    let mut rng = StdRng::seed_from_u64(0x5CA1);
    let stream = (0..n)
        .map(|_| {
            let num_kw = (1 + rng.gen_range(0..2)).min(pool.len());
            let kws: Vec<KeywordId> =
                (0..num_kw).map(|_| KeywordId(pool[zipf.sample(&mut rng)] as u32)).collect();
            SgkQuery::new(kws, r)
        })
        .collect();
    (stream, hot as u32)
}

fn build(
    ds: &Dataset,
    partitioning: &Partitioning,
    indexes: Vec<NpdIndex>,
    machines: usize,
    replicas: usize,
    heat: Option<Vec<u64>>,
) -> Cluster {
    Cluster::build(
        &ds.net,
        partitioning,
        indexes,
        ClusterConfig {
            machines: Some(machines),
            network: NetworkModel::instant(),
            // A generous stall deadline: the hot machine legitimately goes
            // quiet while it chews, and spurious retries would double-count
            // work across replica counts.
            deadline: Duration::from_secs(5),
            coverage_cache_bytes: 0,
            batch_window: BATCH_WINDOW,
            replicas,
            route: RoutePolicy::LeastLoaded,
            placement_heat: heat,
            ..ClusterConfig::default()
        },
    )
}

/// Replication sweep: clustered-Zipf skew, machines held equal, replicas
/// 0/1/2, goodput and the lifetime unbalance factor U per point.
pub fn replication(ds: &Dataset, params: &Params) -> (Table, ReplicationSummary) {
    let k = params.num_fragments;
    let partitioning = MultilevelPartitioner::default().partition(&ds.net, k);
    let n = (params.queries_per_point * 60).max(60);
    let (stream, hot) = clustered_stream(ds, &partitioning, n);
    let fs: Vec<DFunction> = stream.iter().map(|q| q.to_dfunction()).collect();
    let indexes = build_all_indexes(
        &ds.net,
        &partitioning,
        &IndexConfig::with_max_r(R_FACTOR * ds.net.avg_edge_weight()),
    );

    // Probe: the unreplicated cluster (machine m hosts exactly fragment m)
    // measures true per-fragment compute — the heat that seeds replica
    // placement and the skew evidence (`hot_share`) the sweep reports.
    let probe = build(ds, &partitioning, indexes.clone(), k, 0, None);
    let (items, _) = probe.run_stream(&fs);
    let mut heat = vec![0u64; k];
    let mut probe_micros = 0u64;
    let mut probe_work = 0u64;
    for item in &items {
        let o = item.as_ref().expect("probe stream must answer everything");
        for (m, mc) in o.stats.per_machine.iter().enumerate() {
            let work = mc.settled + mc.coverage_nodes;
            heat[m] += work;
            probe_work += work;
            probe_micros += mc.compute.as_micros() as u64;
        }
    }
    probe.shutdown();
    let total_heat: u64 = heat.iter().sum();
    let hot_share = heat[hot as usize] as f64 / (total_heat as f64).max(1.0);
    for h in &mut heat {
        *h = (*h).max(1); // placement shares divide by copies; avoid zeros
    }
    // Probe-calibrated cost of one work unit (settled or coverage node):
    // the probe's hot machine chews nearly alone, so its timers are close
    // to contention-free.
    let micros_per_unit = probe_micros as f64 / (probe_work as f64).max(1.0);

    let mut t = Table::new(
        format!(
            "Replication: clustered-Zipf skew on fragment {hot} ({:.0}% of compute), \
             {n} queries, {k} machines, {}",
            100.0 * hot_share,
            ds.id.name()
        ),
        vec![
            "replicas".into(),
            "goodput".into(),
            "speedup".into(),
            "wall".into(),
            "U".into(),
            "retries".into(),
            "frames".into(),
        ],
    );
    let mut summary = ReplicationSummary {
        dataset: ds.id.name().to_string(),
        queries: n,
        machines: k,
        hot_fragment: hot,
        hot_share,
        points: Vec::new(),
    };

    for &replicas in &REPLICA_COUNTS {
        let cluster = build(ds, &partitioning, indexes.clone(), k, replicas, Some(heat.clone()));
        // Warmup pass (allocator, lazy engine state), then best-of-REPS.
        let (warm, _) = cluster.run_stream(&fs);
        assert!(warm.iter().all(|r| r.is_ok()), "replication warmup must answer everything");
        let mut goodput = 0.0f64;
        let mut wall_qps = 0.0f64;
        let mut frames = 0u64;
        let mut unbalance = 1.0f64;
        for _ in 0..REPS {
            let (f_before, _) = cluster.link_message_totals();
            let (items, elapsed) = cluster.run_stream(&fs);
            let (f_after, _) = cluster.link_message_totals();
            assert!(items.iter().all(|r| r.is_ok()), "r={replicas}: every query must answer");
            // Modeled distributed makespan: the slowest machine's work in
            // deterministic Theorem 5 counters, credited to the replica
            // that served each response, at the probe-calibrated unit cost.
            let mut busy = vec![0u64; k];
            for item in &items {
                let o = item.as_ref().expect("asserted ok above");
                for (m, mc) in o.stats.per_machine.iter().enumerate() {
                    busy[m] += mc.settled + mc.coverage_nodes;
                }
            }
            let makespan_work = busy.iter().copied().max().unwrap_or(1).max(1);
            let min_work = busy.iter().copied().filter(|&w| w > 0).min().unwrap_or(1);
            let makespan_us = (makespan_work as f64 * micros_per_unit).max(1.0);
            let pass = items.len() as f64 / (makespan_us * 1e-6);
            if pass > goodput {
                goodput = pass;
                wall_qps = items.len() as f64 / elapsed.as_secs_f64().max(1e-9);
                frames = f_after - f_before;
                unbalance = makespan_work as f64 / min_work as f64;
            }
        }
        let rc = cluster.recovery_counters();
        cluster.shutdown();

        let baseline = summary.goodput_at(0).unwrap_or(goodput);
        t.push(vec![
            replicas.to_string(),
            format!("{goodput:.0} q/s"),
            format!("{:.2}x", goodput / baseline.max(1e-9)),
            format!("{wall_qps:.0} q/s"),
            format!("{unbalance:.2}"),
            rc.retries.to_string(),
            frames.to_string(),
        ]);
        summary.points.push(ReplicationPoint {
            replicas,
            goodput,
            wall_qps,
            unbalance,
            retries: rc.retries,
            reroutes: rc.reroutes,
            frames,
        });
    }
    (t, summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{load, DatasetId, Scale};

    #[test]
    fn replication_sweep_spreads_the_hot_fragment() {
        let ds = load(DatasetId::Aus, Scale::Smoke);
        let params =
            Params { num_fragments: 4, queries_per_point: 2, num_keywords: 3, ..Params::default() };
        let (t, summary) = replication(&ds, &params);
        assert_eq!(t.rows.len(), REPLICA_COUNTS.len());
        assert_eq!(summary.points.len(), REPLICA_COUNTS.len());
        assert!((summary.hot_fragment as usize) < params.num_fragments);
        // The constructed workload is genuinely skewed: the hot fragment
        // carries clearly more than a uniform share of the probe work.
        // (Work units — settled + coverage nodes — are flatter across
        // fragments than timers: every fragment explores its subgraph even
        // when few objects match, so the margin is modest at k=4.)
        assert!(
            summary.hot_share * params.num_fragments as f64 > 1.1,
            "hot share {:.2} not skewed for k={}",
            summary.hot_share,
            params.num_fragments
        );
        for (p, &r) in summary.points.iter().zip(&REPLICA_COUNTS) {
            assert_eq!(p.replicas, r);
            assert!(p.goodput > 0.0);
            assert!(p.wall_qps > 0.0);
            assert!(p.unbalance >= 1.0);
            assert_eq!(p.reroutes, 0, "fault-free sweep must not reroute");
            assert!(p.frames > 0);
        }
        // Replication relieves the skew bottleneck: both the
        // modeled-makespan goodput and the work-based unbalance factor are
        // deterministic counters (immune to the timer contention of the
        // parallel unit suite), so their single-owner → two-replica
        // direction is exact. (The per-step strictness and the ≥1.5x
        // goodput headline are pinned on the bench-scale artifact.)
        let g0 = summary.points[0].goodput;
        let g2 = summary.points[2].goodput;
        assert!(g2 > g0, "goodput must improve with replication: {g0:.0} -> {g2:.0}");
        let u0 = summary.points[0].unbalance;
        let u2 = summary.points[2].unbalance;
        assert!(u2 < u0, "U must drop with replication: {u0:.2} -> {u2:.2}");

        let json = summary.to_json();
        assert!(json.contains("\"hot_share\""));
        assert!(json.contains("\"wall_qps\""));
        assert!(json.contains("\"unbalance\""));
        assert!(json.trim_start().starts_with('{') && json.trim_end().ends_with('}'));
    }
}
