//! Experiment runners — one per table/figure of the paper (§6).
//!
//! Measurement methodology: the paper observes that "in distributed
//! computing, the response time is determined by the slowest task"
//! (analysis of Theorem 5). We therefore evaluate each fragment's task
//! sequentially on one host (so per-task wall-clock is contention-free and
//! deterministic), take the **maximum task time** as the distributed
//! response, and add the modeled network cost of the coordinator round
//! (dispatch + slowest result transfer over the paper's 100 Mb switch).
//! The threaded [`disks_cluster::Cluster`] exercises the same engines
//! concurrently and is used by the communication experiment and the
//! integration tests.

mod ablation;
mod comm;
mod hedging;
mod layout;
mod mix;
mod overload;
mod parallel;
mod replication;
mod size;
mod throughput;
mod time;
mod transport;

pub use ablation::{ablation_keyword_aggregation, ablation_minimality, ablation_partitioner};
pub use comm::comm_contrast;
pub use hedging::{hedging, HedgingPoint, HedgingSummary};
pub use layout::{layout, LayoutArm, LayoutSummary};
pub use mix::{fig16_dfunctions, fig17_rkq, topk_extension};
pub use overload::{overload, OverloadPoint, OverloadSummary};
pub use parallel::{parallel, ParallelPoint, ParallelSummary};
pub use replication::{replication, ReplicationPoint, ReplicationSummary};
pub use size::{fig7_index_size, fig8_index_size_unbounded, tab1_datasets, tab3_indexing_time};
pub use throughput::{throughput, ThroughputPoint, ThroughputSummary};
pub use time::{fig10_11_keywords, fig12_13_fragments, fig14_15_radius, fig9_query_time_vs_maxr};
pub use transport::{transport, TransportPoint, TransportSummary};

use std::time::Duration;

use disks_core::{build_all_indexes, DFunction, FragmentEngine, IndexConfig, NpdIndex, QueryCost};
use disks_partition::{MultilevelPartitioner, Partitioner, Partitioning};
use disks_roadnet::{NodeId, RoadNetwork};

use crate::report::median_duration;

/// A prepared distributed deployment: partitioning + per-fragment indexes +
/// per-fragment engines.
pub struct Deployment {
    pub partitioning: Partitioning,
    pub indexes: Vec<NpdIndex>,
    pub engines: Vec<FragmentEngine>,
}

impl Deployment {
    /// Partition `net` into `k` fragments, build all NPD-indexes, and
    /// materialize the engines.
    pub fn prepare(net: &RoadNetwork, k: usize, config: &IndexConfig) -> Deployment {
        let partitioning = MultilevelPartitioner::default().partition(net, k);
        let indexes = build_all_indexes(net, &partitioning, config);
        let engines = indexes
            .iter()
            .map(|i| FragmentEngine::new(net, &partitioning, i).expect("engine build"))
            .collect();
        Deployment { partitioning, indexes, engines }
    }

    /// Evaluate a D-function on every fragment; returns the merged results
    /// and per-fragment costs.
    pub fn evaluate(&mut self, f: &DFunction) -> (Vec<NodeId>, Vec<QueryCost>) {
        let mut results = Vec::new();
        let mut costs = Vec::with_capacity(self.engines.len());
        for engine in &mut self.engines {
            let (nodes, cost) = engine.evaluate(f).expect("query within maxR");
            results.extend(nodes);
            costs.push(cost);
        }
        results.sort_unstable();
        (results, costs)
    }

    /// The distributed response time of one query: slowest task + the
    /// modeled coordinator round on the 100 Mb switch.
    pub fn response_time(&mut self, f: &DFunction) -> Duration {
        let (results, costs) = self.evaluate(f);
        let slowest = costs.iter().map(|c| c.elapsed).max().unwrap_or(Duration::ZERO);
        let network = disks_cluster::NetworkModel::switch_100mbps();
        // Request ≈ encoded D-function; response ≈ 4 bytes/node + header.
        let request_bytes = 16 * f.num_terms() as u64 + 16;
        let largest_response = costs.iter().map(|c| 4 * c.results as u64 + 32).max().unwrap_or(0);
        let _ = results;
        network.transfer_time(request_bytes) + slowest + network.transfer_time(largest_response)
    }

    /// Representative response time over a query batch: one warmup pass
    /// (caches, allocator), then the median of per-query response times —
    /// max-over-machines metrics inherit any single straggler, so the
    /// median is the stable summary.
    pub fn mean_response(&mut self, fs: &[DFunction]) -> Duration {
        for f in fs {
            let _ = self.evaluate(f);
        }
        let times: Vec<Duration> = fs.iter().map(|f| self.response_time(f)).collect();
        median_duration(&times)
    }
}

/// Representative centralized ("1 fragment") time over a query batch
/// (warmup pass + median, mirroring [`Deployment::mean_response`]).
pub fn mean_centralized(net: &RoadNetwork, fs: &[DFunction]) -> Duration {
    let mut engine = disks_baseline::CentralizedEngine::new(net);
    for f in fs {
        let _ = engine.run(f).expect("valid query");
    }
    let times: Vec<Duration> = fs.iter().map(|f| engine.run(f).expect("valid query").1).collect();
    median_duration(&times)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{load, DatasetId, Scale};
    use crate::queries::QueryGenerator;

    #[test]
    fn deployment_round_trip_matches_centralized() {
        let ds = load(DatasetId::Aus, Scale::Smoke);
        let e = ds.net.avg_edge_weight();
        let mut dep = Deployment::prepare(&ds.net, 4, &IndexConfig::with_max_r(40 * e));
        let mut gen = QueryGenerator::new(&ds.net, 11);
        let q = gen.gen_sgkq(3, 10 * e).unwrap();
        let f = q.to_dfunction();
        let (results, costs) = dep.evaluate(&f);
        assert_eq!(costs.len(), 4);
        let mut central = disks_core::CentralizedCoverage::new(&ds.net);
        assert_eq!(results, central.evaluate(&f).unwrap());
        let t = dep.response_time(&f);
        assert!(t > Duration::ZERO);
    }
}
