//! Workload-aware layout vs blind layout — the DESIGN.md §6i pipeline on
//! a clustered-Zipf stream with a cold one-shot tail
//! (`results/BENCH_layout.json`).
//!
//! The paper fixes the physical layout before the first query arrives:
//! the partitioner minimizes raw edge cut, the bi-level split sits at the
//! configured `maxR`, and the cache treats every coverage slot alike. This
//! experiment measures what the observed workload is worth. A probe pass
//! on the blind cluster charges the coordinator's slot-heat ledger, which
//! is exported as a [`HeatSnapshot`], round-tripped through its codec (the
//! artifact a real deployment would ship to the offline planner), and
//! projected into a [`LayoutProfile`]. The profile then drives all three
//! layout levers at once:
//!
//! * **query-weighted repartitioning** — [`refine_with_profile`] moves
//!   boundary nodes to shrink the *query-weighted* edge cut
//!   ([`PartitionMetrics::compute_weighted`]);
//! * **observed-radius bi-level split** — [`observed_split`] drops the
//!   primary/secondary boundary to the 0.9 radius quantile the stream
//!   actually used, instead of the static `maxR`;
//! * **heat-aware cache admission + heat-seeded placement** — workers run
//!   [`CoverageCache`] with a heat threshold (one-shot slots are first
//!   out, hot slots resist eviction) and [`Placement::replicated`] seeds
//!   replicas from the profile's per-fragment heat.
//!
//! **Workload.** Hot queries Zipf-sample a small pool of keywords
//! concentrated in one fragment (the replication sweep's city-center
//! pattern); three query radii mix so ~90% of the weight sits at or below
//! `R/2`, which is what makes the observed split actionable. Between hot
//! queries a tail of one-shot queries over rarely-used keywords pollutes
//! the cache — the classic scan-pollution pattern a plain LRU cannot
//! survive on a tight budget.
//!
//! **Metrics.** Goodput is the modeled distributed makespan q/s in the
//! replication sweep's methodology (deterministic work counters at the
//! probe-calibrated unit cost; best of [`REPS`] passes), with threaded
//! wall-clock alongside. The work unit here is *settled nodes* — the
//! Theorem 5 Dijkstra term, zero on a cache hit. (The replication sweep
//! adds coverage sizes; that is right when nothing is cached, but it
//! would bill a cache hit for the search it skipped — the merge of an
//! already-materialized coverage bitset is word-parallel and an order
//! cheaper than settling its nodes.) Weighted cut comes from
//! [`PartitionMetrics::compute_weighted`] under the probe profile's
//! [diffused node heat] at the refinement pass's hop count; the cache hit
//! rate is the lifetime worker-counter delta over the measured pass; U is
//! the Theorem 6 unbalance factor (max/min machine work) over the best
//! pass.
//!
//! [diffused node heat]: disks_partition::LayoutProfile::node_heat_diffused
//!
//! [`HeatSnapshot`]: disks_cluster::HeatSnapshot
//! [`LayoutProfile`]: disks_partition::LayoutProfile
//! [`refine_with_profile`]: disks_partition::MultilevelPartitioner::refine_with_profile
//! [`PartitionMetrics::compute_weighted`]: disks_partition::PartitionMetrics::compute_weighted
//! [`observed_split`]: disks_core::observed_split
//! [`CoverageCache`]: disks_cluster::CoverageCache
//! [`Placement::replicated`]: disks_cluster::Placement

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use disks_cluster::{Cluster, ClusterConfig, HeatSnapshot, NetworkModel, RoutePolicy};
use disks_core::{build_all_indexes, observed_split, DFunction, IndexConfig, NpdIndex, SgkQuery};
use disks_partition::{
    LayoutProfile, MultilevelPartitioner, PartitionMetrics, Partitioner, Partitioning,
    HEAT_DIFFUSION_HOPS,
};
use disks_roadnet::zipf::Zipf;
use disks_roadnet::KeywordId;

use crate::datasets::Dataset;
use crate::params::Params;
use crate::report::Table;

/// Query radius ceiling in average edge lengths (the indexes' `maxR`).
const R_FACTOR: u64 = 20;

/// Hot-pool size: keywords concentrated in the hot fragment, Zipf-ranked.
/// Small enough that the hot slot set fits the cache budget — the contest
/// is pollution, not capacity.
const HOT_POOL: usize = 4;

/// Cold one-shot queries interleaved per hot query (scan pollution).
const COLD_PER_HOT: usize = 2;

/// Cache budget in entries (coverage bitset + book-keeping overhead per
/// entry): holds both hosted fragments' hot slot sets with a little
/// headroom, but far fewer than the cold pollution arriving between two
/// recurrences of the tail hot slots.
const BUDGET_ENTRIES: usize = 12;

/// Heat-admission threshold for the workload arm (the `DISKS_CACHE_HEAT`
/// workload default): a slot must be looked up this often before it may
/// displace residents.
const CACHE_HEAT: u32 = 3;

/// Batched-dispatch window (identical across arms).
const BATCH_WINDOW: usize = 8;

/// Measured passes per arm; the best pass wins (see the replication sweep
/// for why work counters + best-of de-noise a contended runner).
const REPS: usize = 3;

/// One layout arm's measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct LayoutArm {
    /// `"blind"` (raw-cut partitioning, uniform placement, plain LRU) or
    /// `"workload"` (profile-refined partitioning, heat-seeded placement,
    /// heat-aware admission).
    pub layout: String,
    /// Modeled-makespan queries per second (probe-calibrated work units).
    pub goodput: f64,
    /// Threaded wall-clock q/s on the same pass (host-bound).
    pub wall_qps: f64,
    /// Query-weighted edge cut of the arm's partitioning under the probe
    /// profile's node heat.
    pub weighted_cut: u64,
    /// Raw edge cut of the arm's partitioning.
    pub cut_edges: usize,
    /// Worker coverage-cache hit rate over the measured pass.
    pub cache_hit_rate: f64,
    /// Cache evictions over the measured pass.
    pub evictions: u64,
    /// Theorem 6 unbalance factor U over the best pass (max/min machine
    /// work in deterministic counters).
    pub unbalance: f64,
}

/// Machine-readable summary of the layout contest.
#[derive(Debug, Clone, PartialEq)]
pub struct LayoutSummary {
    pub dataset: String,
    /// Queries per measured pass.
    pub queries: usize,
    /// Machines (held equal across arms).
    pub machines: usize,
    /// The fragment the hot pool concentrates on (blind partitioning).
    pub hot_fragment: u32,
    /// The indexes' static `maxR` (= the static bi-level split).
    pub static_max_r: u64,
    /// The profile's 0.9-quantile bi-level split ([`observed_split`]).
    ///
    /// [`observed_split`]: disks_core::observed_split
    pub observed_split_r: u64,
    pub arms: Vec<LayoutArm>,
}

impl LayoutSummary {
    /// The named arm, if measured.
    pub fn arm(&self, layout: &str) -> Option<&LayoutArm> {
        self.arms.iter().find(|a| a.layout == layout)
    }

    /// Workload-over-blind goodput ratio, if both arms ran.
    pub fn speedup(&self) -> Option<f64> {
        let blind = self.arm("blind")?.goodput;
        let wl = self.arm("workload")?.goodput;
        (blind > 0.0).then(|| wl / blind)
    }

    /// Hand-formatted JSON (the repo carries no serde).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"dataset\": \"{}\",\n", self.dataset));
        s.push_str(&format!("  \"queries\": {},\n", self.queries));
        s.push_str(&format!("  \"machines\": {},\n", self.machines));
        s.push_str(&format!("  \"hot_fragment\": {},\n", self.hot_fragment));
        s.push_str(&format!("  \"static_max_r\": {},\n", self.static_max_r));
        s.push_str(&format!("  \"observed_split_r\": {},\n", self.observed_split_r));
        s.push_str("  \"arms\": [\n");
        for (i, a) in self.arms.iter().enumerate() {
            let sep = if i + 1 == self.arms.len() { "" } else { "," };
            s.push_str(&format!(
                "    {{\"layout\": \"{}\", \"goodput\": {:.1}, \"wall_qps\": {:.1}, \
                 \"weighted_cut\": {}, \"cut_edges\": {}, \"cache_hit_rate\": {:.4}, \
                 \"evictions\": {}, \"unbalance\": {:.3}}}{sep}\n",
                a.layout,
                a.goodput,
                a.wall_qps,
                a.weighted_cut,
                a.cut_edges,
                a.cache_hit_rate,
                a.evictions,
                a.unbalance
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// The layout contest's stream: Zipf-sampled hot-pool queries over one
/// fragment's concentrated keywords, interleaved with [`COLD_PER_HOT`]
/// one-shot queries. Hot queries run at exactly `R/2` (frequent keywords,
/// many coverage sources — the expensive, recurring, cache-worthy work).
/// One-shots draw mid-frequency keywords (objects in most fragments, so
/// their coverages clear the cache's tiny-entry bypass everywhere) with a
/// *fresh uniformly-random radius in `[R/4, R/2)`* each time — the
/// `(term, radius)` slot never recurs, so caching it is pure pollution:
/// exactly the scan traffic a plain LRU lets flush the hot set. The whole
/// stream sits at or below `R/2`, so the 0.9-quantile bi-level split
/// lands there — the static split covers radii this workload never uses.
/// Returns the stream, the hot fragment, and the hot pool.
fn layout_stream(
    ds: &Dataset,
    partitioning: &Partitioning,
    n: usize,
) -> (Vec<SgkQuery>, u32, Vec<u32>) {
    let net = &ds.net;
    let k = partitioning.num_fragments();
    let freqs = net.keyword_frequencies();

    // Home fragment of every occurring keyword (by occurrence count).
    let mut per_kw_home: Vec<(usize, usize, usize)> = Vec::new(); // (kw, home, freq)
    for (kw, &freq) in freqs.iter().enumerate() {
        if freq == 0 {
            continue;
        }
        let mut per_frag = vec![0usize; k];
        for &node in net.nodes_with_keyword(KeywordId(kw as u32)) {
            per_frag[partitioning.fragment_of(node).index()] += 1;
        }
        let home = per_frag.iter().enumerate().max_by_key(|&(_, &c)| c).expect("k >= 1").0;
        per_kw_home.push((kw, home, freq));
    }
    assert!(!per_kw_home.is_empty(), "no keywords at all — degenerate dataset");

    // Hot fragment = the one with the largest frequency mass of homed
    // keywords; its most frequent keywords form the pool.
    let mut mass = vec![0usize; k];
    for &(_, home, freq) in &per_kw_home {
        mass[home] += freq;
    }
    let hot = mass.iter().enumerate().max_by_key(|&(_, &m)| m).expect("k >= 1").0;
    let mut pool: Vec<usize> =
        per_kw_home.iter().filter(|&&(_, home, _)| home == hot).map(|&(kw, _, _)| kw).collect();
    pool.sort_unstable_by_key(|&kw| std::cmp::Reverse(freqs[kw]));
    pool.truncate(HOT_POOL);

    // One-shot band: the most frequent non-pool keywords — spread widely
    // enough that their coverages are admitted (not bypassed) on every
    // worker, which is what makes them pollute.
    let mut cold: Vec<usize> =
        per_kw_home.iter().map(|&(kw, _, _)| kw).filter(|kw| !pool.contains(kw)).collect();
    cold.sort_unstable_by_key(|&kw| (std::cmp::Reverse(freqs[kw]), kw));
    cold.truncate(40);
    if cold.is_empty() {
        cold = pool.clone(); // degenerate vocabulary; keep the stream total
    }

    let e = net.avg_edge_weight();
    let quarter = R_FACTOR * e / 4;
    let half = R_FACTOR * e / 2;

    // A flat-ish Zipf: every pool slot recurs on an interval that outruns
    // a plain LRU under the pollution, while still ranking the pool.
    let zipf = Zipf::new(pool.len(), 0.5);
    let mut rng = StdRng::seed_from_u64(0x1A70);
    let mut cold_at = 0usize;
    let stream = (0..n)
        .map(|i| {
            if i % (COLD_PER_HOT + 1) == 0 {
                // Hot: frequent keyword, fixed R/2 — one slot per pool
                // keyword, recurring often enough to earn heat.
                SgkQuery::new(vec![KeywordId(pool[zipf.sample(&mut rng)] as u32)], half)
            } else {
                let kw = cold[cold_at % cold.len()];
                cold_at += 1;
                // Fresh radius every time: the slot never recurs.
                SgkQuery::new(vec![KeywordId(kw as u32)], rng.gen_range(quarter..half))
            }
        })
        .collect();
    (stream, hot as u32, pool.iter().map(|&kw| kw as u32).collect())
}

struct Arm<'a> {
    layout: &'static str,
    partitioning: &'a Partitioning,
    indexes: Vec<NpdIndex>,
    cache_heat: u32,
    placement_heat: Option<Vec<u64>>,
}

fn run_arm(
    ds: &Dataset,
    arm: Arm<'_>,
    fs: &[DFunction],
    node_heat: &[u64],
    cache_budget: usize,
    micros_per_unit: f64,
) -> LayoutArm {
    let k = arm.partitioning.num_fragments();
    let m = PartitionMetrics::compute_weighted(&ds.net, arm.partitioning, node_heat);
    let cluster = Cluster::build(
        &ds.net,
        arm.partitioning,
        arm.indexes,
        ClusterConfig {
            machines: Some(k),
            network: NetworkModel::instant(),
            deadline: Duration::from_secs(5),
            coverage_cache_bytes: cache_budget,
            cache_heat: arm.cache_heat,
            batch_window: BATCH_WINDOW,
            replicas: 1,
            route: RoutePolicy::LeastLoaded,
            placement_heat: arm.placement_heat,
            ..ClusterConfig::default()
        },
    );
    // Warmup pass (allocator, lazy engine state, cache steady state), then
    // best-of-REPS.
    let (warm, _) = cluster.run_stream(fs);
    assert!(warm.iter().all(|r| r.is_ok()), "{}: warmup must answer everything", arm.layout);
    let mut best = LayoutArm {
        layout: arm.layout.to_string(),
        goodput: 0.0,
        wall_qps: 0.0,
        weighted_cut: m.weighted_cut,
        cut_edges: m.cut_edges,
        cache_hit_rate: 0.0,
        evictions: 0,
        unbalance: 1.0,
    };
    for _ in 0..REPS {
        let cc_before = cluster.cache_counters();
        let (items, elapsed) = cluster.run_stream(fs);
        let cc_after = cluster.cache_counters();
        assert!(items.iter().all(|r| r.is_ok()), "{}: every query must answer", arm.layout);
        let mut busy = vec![0u64; k];
        for item in &items {
            let o = item.as_ref().expect("asserted ok above");
            for (mach, mc) in o.stats.per_machine.iter().enumerate() {
                busy[mach] += mc.settled;
            }
        }
        let makespan_work = busy.iter().copied().max().unwrap_or(1).max(1);
        let min_work = busy.iter().copied().filter(|&w| w > 0).min().unwrap_or(1);
        let makespan_us = (makespan_work as f64 * micros_per_unit).max(1.0);
        let goodput = items.len() as f64 / (makespan_us * 1e-6);
        if goodput > best.goodput {
            let hits = cc_after.hits - cc_before.hits;
            let misses = cc_after.misses - cc_before.misses;
            best.goodput = goodput;
            best.wall_qps = items.len() as f64 / elapsed.as_secs_f64().max(1e-9);
            best.cache_hit_rate = hits as f64 / ((hits + misses) as f64).max(1.0);
            best.evictions = cc_after.evictions - cc_before.evictions;
            best.unbalance = makespan_work as f64 / min_work as f64;
        }
    }
    cluster.shutdown();
    best
}

/// The layout contest: blind layout (raw-cut partitioning, uniform
/// placement, plain LRU) vs workload-aware layout (profile-refined
/// partitioning, heat-seeded placement, heat-aware admission), same
/// stream, same machine count, same cache budget.
pub fn layout(ds: &Dataset, params: &Params) -> (Table, LayoutSummary) {
    let k = params.num_fragments;
    let blind = MultilevelPartitioner::default().partition(&ds.net, k);
    let n = (params.queries_per_point * 60).max(120);
    let (stream, hot, _pool) = layout_stream(ds, &blind, n);
    let fs: Vec<DFunction> = stream.iter().map(|q| q.to_dfunction()).collect();
    let max_r = R_FACTOR * ds.net.avg_edge_weight();
    let blind_indexes = build_all_indexes(&ds.net, &blind, &IndexConfig::with_max_r(max_r));

    // Probe pass on the blind, uncached, unreplicated cluster: calibrates
    // the work-unit cost and charges the coordinator's slot-heat ledger.
    let probe = Cluster::build(
        &ds.net,
        &blind,
        blind_indexes.clone(),
        ClusterConfig {
            machines: Some(k),
            network: NetworkModel::instant(),
            deadline: Duration::from_secs(5),
            coverage_cache_bytes: 0,
            cache_heat: 0,
            batch_window: BATCH_WINDOW,
            ..ClusterConfig::default()
        },
    );
    let (items, _) = probe.run_stream(&fs);
    let mut probe_micros = 0u64;
    let mut probe_work = 0u64;
    for item in &items {
        let o = item.as_ref().expect("probe stream must answer everything");
        for mc in &o.stats.per_machine {
            probe_work += mc.settled;
            probe_micros += mc.compute.as_micros() as u64;
        }
    }
    // Export the slot-heat ledger through the snapshot codec — the same
    // bytes a deployment would ship to its offline layout planner.
    let snapshot_bytes = probe.heat_snapshot().encode_bytes();
    probe.shutdown();
    let snapshot = HeatSnapshot::decode_bytes(&snapshot_bytes).expect("own codec round-trips");
    let profile: LayoutProfile = snapshot.to_profile();
    let micros_per_unit = probe_micros as f64 / (probe_work as f64).max(1.0);
    let node_heat = profile.node_heat_diffused(&ds.net, HEAT_DIFFUSION_HOPS);

    // The workload arm's layout: boundary refinement under query weights,
    // indexes rebuilt for the refined fragments, placement seeded from the
    // profile's per-fragment heat.
    let refined = MultilevelPartitioner::default().refine_with_profile(&ds.net, &blind, &profile);
    let refined_indexes = build_all_indexes(&ds.net, &refined, &IndexConfig::with_max_r(max_r));
    let mut placement_heat = profile.fragment_heat(&ds.net, &refined);
    for h in &mut placement_heat {
        *h = (*h).max(1); // placement shares divide by copies; avoid zeros
    }

    // One cache budget for both arms: the hot slot set fits, the hot set
    // plus a round of cold pollution does not.
    let max_frag_nodes =
        blind.fragment_ids().map(|f| blind.nodes(f).len()).max().unwrap_or(1).max(1);
    let entry_bytes = disks_core::bitset::BitSet::new(max_frag_nodes).memory_bytes() + 64;
    let cache_budget = BUDGET_ENTRIES * entry_bytes;

    let observed_r = observed_split(&profile, max_r);

    let arms = vec![
        run_arm(
            ds,
            Arm {
                layout: "blind",
                partitioning: &blind,
                indexes: blind_indexes,
                cache_heat: 0,
                placement_heat: None,
            },
            &fs,
            &node_heat,
            cache_budget,
            micros_per_unit,
        ),
        run_arm(
            ds,
            Arm {
                layout: "workload",
                partitioning: &refined,
                indexes: refined_indexes,
                cache_heat: CACHE_HEAT,
                placement_heat: Some(placement_heat),
            },
            &fs,
            &node_heat,
            cache_budget,
            micros_per_unit,
        ),
    ];

    let mut t = Table::new(
        format!(
            "Layout: clustered-Zipf + one-shot tail on fragment {hot}, {n} queries, \
             {k} machines, split {max_r} -> {observed_r}, {}",
            ds.id.name()
        ),
        vec![
            "layout".into(),
            "goodput".into(),
            "speedup".into(),
            "wcut".into(),
            "cut".into(),
            "hit%".into(),
            "evict".into(),
            "U".into(),
        ],
    );
    let baseline = arms[0].goodput;
    for a in &arms {
        t.push(vec![
            a.layout.clone(),
            format!("{:.0} q/s", a.goodput),
            format!("{:.2}x", a.goodput / baseline.max(1e-9)),
            a.weighted_cut.to_string(),
            a.cut_edges.to_string(),
            format!("{:.0}%", 100.0 * a.cache_hit_rate),
            a.evictions.to_string(),
            format!("{:.2}", a.unbalance),
        ]);
    }
    let summary = LayoutSummary {
        dataset: ds.id.name().to_string(),
        queries: n,
        machines: k,
        hot_fragment: hot,
        static_max_r: max_r,
        observed_split_r: observed_r,
        arms,
    };
    (t, summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{load, DatasetId, Scale};

    #[test]
    fn layout_contest_produces_both_arms() {
        let ds = load(DatasetId::Aus, Scale::Smoke);
        let params =
            Params { num_fragments: 4, queries_per_point: 2, num_keywords: 3, ..Params::default() };
        let (t, summary) = layout(&ds, &params);
        assert_eq!(t.rows.len(), 2);
        assert_eq!(summary.arms.len(), 2);
        let blind = summary.arm("blind").expect("blind arm");
        let wl = summary.arm("workload").expect("workload arm");
        for a in [blind, wl] {
            assert!(a.goodput > 0.0);
            assert!(a.wall_qps > 0.0);
            assert!((0.0..=1.0).contains(&a.cache_hit_rate));
            assert!(a.unbalance >= 1.0);
        }
        // The weighted refinement is monotone by construction, so this
        // direction is exact at any scale; strictness and the >= 1.25x
        // goodput headline are pinned on the bench-scale artifact.
        assert!(
            wl.weighted_cut <= blind.weighted_cut,
            "refinement must not worsen the weighted cut: {} -> {}",
            blind.weighted_cut,
            wl.weighted_cut
        );
        // The observed split obeys its clamp: within (0, static maxR].
        assert!(summary.observed_split_r >= 1);
        assert!(summary.observed_split_r <= summary.static_max_r);
        // The radii mix puts 90% of the weight at or below R/2, so the
        // 0.9-quantile split genuinely shrinks the primary.
        assert!(
            summary.observed_split_r <= summary.static_max_r / 2 + 1,
            "split {} did not shrink from {}",
            summary.observed_split_r,
            summary.static_max_r
        );

        let json = summary.to_json();
        assert!(json.contains("\"observed_split_r\""));
        assert!(json.contains("\"weighted_cut\""));
        assert!(json.contains("\"cache_hit_rate\""));
        assert!(json.trim_start().starts_with('{') && json.trim_end().ends_with('}'));
    }
}
