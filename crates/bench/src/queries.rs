//! The paper's query generator (§6, "Generating queries").
//!
//! > "We first select a circle range centered by a random node. Then, within
//! > the range we choose the keywords according to their frequency. Keywords
//! > with higher frequency have a larger chance to be chosen."
//!
//! We reproduce that literally: a random center node, a coordinate circle
//! around it, the keyword multiset of the objects inside, and
//! frequency-weighted sampling without replacement. If a circle does not
//! contain enough distinct keywords it is enlarged, and after a few attempts
//! a fresh center is drawn.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use disks_core::{RangeKeywordQuery, SgkQuery};
use disks_roadnet::{KeywordId, NodeId, RoadNetwork};

/// Frequency-weighted, spatially correlated query generator.
pub struct QueryGenerator<'a> {
    net: &'a RoadNetwork,
    rng: StdRng,
    /// Initial circle radius as a fraction of the coordinate extent.
    range_frac: f32,
    extent: (f32, f32, f32, f32), // min_x, min_y, max_x, max_y
    /// Object nodes (keyword carriers), cached.
    objects: Vec<NodeId>,
}

impl<'a> QueryGenerator<'a> {
    pub fn new(net: &'a RoadNetwork, seed: u64) -> Self {
        let mut extent = (f32::INFINITY, f32::INFINITY, f32::NEG_INFINITY, f32::NEG_INFINITY);
        for n in net.node_ids() {
            let (x, y) = net.coord(n);
            extent.0 = extent.0.min(x);
            extent.1 = extent.1.min(y);
            extent.2 = extent.2.max(x);
            extent.3 = extent.3.max(y);
        }
        let objects = net.node_ids().filter(|&n| net.is_object(n)).collect();
        QueryGenerator { net, rng: StdRng::seed_from_u64(seed), range_frac: 0.15, extent, objects }
    }

    /// Keyword occurrences among objects within the circle of `radius`
    /// (coordinate units) around `center`.
    fn keywords_in_circle(&self, center: (f32, f32), radius: f32) -> Vec<(KeywordId, usize)> {
        use std::collections::HashMap;
        let mut counts: HashMap<KeywordId, usize> = HashMap::new();
        let r2 = radius * radius;
        for &obj in &self.objects {
            let (x, y) = self.net.coord(obj);
            let (dx, dy) = (x - center.0, y - center.1);
            if dx * dx + dy * dy <= r2 {
                for &k in self.net.keywords(obj) {
                    *counts.entry(k).or_insert(0) += 1;
                }
            }
        }
        let mut out: Vec<(KeywordId, usize)> = counts.into_iter().collect();
        out.sort_unstable(); // deterministic order before weighted sampling
        out
    }

    /// Frequency-weighted sampling of `k` distinct keywords.
    fn sample_keywords(&mut self, pool: &[(KeywordId, usize)], k: usize) -> Vec<KeywordId> {
        let mut remaining: Vec<(KeywordId, usize)> = pool.to_vec();
        let mut chosen = Vec::with_capacity(k);
        for _ in 0..k {
            let total: usize = remaining.iter().map(|&(_, c)| c).sum();
            if total == 0 || remaining.is_empty() {
                break;
            }
            let mut pick = self.rng.gen_range(0..total);
            let mut idx = 0;
            for (i, &(_, c)) in remaining.iter().enumerate() {
                if pick < c {
                    idx = i;
                    break;
                }
                pick -= c;
            }
            chosen.push(remaining.swap_remove(idx).0);
        }
        chosen
    }

    /// Pick a circle containing at least `k` distinct keywords; enlarges and
    /// recenters as needed. Returns the center node and the keyword pool.
    fn pick_circle(&mut self, k: usize) -> Option<(NodeId, Vec<(KeywordId, usize)>)> {
        let extent_radius =
            ((self.extent.2 - self.extent.0).max(self.extent.3 - self.extent.1)).max(1.0);
        for _attempt in 0..64 {
            let center = NodeId(self.rng.gen_range(0..self.net.num_nodes() as u32));
            let mut radius = extent_radius * self.range_frac;
            for _ in 0..4 {
                let pool = self.keywords_in_circle(self.net.coord(center), radius);
                if pool.len() >= k {
                    return Some((center, pool));
                }
                radius *= 2.0;
            }
        }
        None
    }

    /// Generate an SGKQ with `num_keywords` keywords and radius `r`.
    pub fn gen_sgkq(&mut self, num_keywords: usize, r: u64) -> Option<SgkQuery> {
        let (_, pool) = self.pick_circle(num_keywords)?;
        let keywords = self.sample_keywords(&pool, num_keywords);
        if keywords.len() < num_keywords {
            return None;
        }
        Some(SgkQuery::new(keywords, r))
    }

    /// Generate an RKQ: the query location is a random *object* node inside
    /// the circle (objects are DL-indexed under the paper's §3.7 pruning).
    pub fn gen_rkq(&mut self, num_keywords: usize, r: u64) -> Option<RangeKeywordQuery> {
        let (center, pool) = self.pick_circle(num_keywords)?;
        let keywords = self.sample_keywords(&pool, num_keywords);
        if keywords.len() < num_keywords {
            return None;
        }
        // Nearest object to the center (coordinate distance) as location.
        let (cx, cy) = self.net.coord(center);
        let location = self.objects.iter().copied().min_by(|&a, &b| {
            let da = coord_dist2(self.net.coord(a), (cx, cy));
            let db = coord_dist2(self.net.coord(b), (cx, cy));
            da.partial_cmp(&db).expect("finite coords")
        })?;
        Some(RangeKeywordQuery::new(location, keywords, r))
    }

    /// Generate a batch of SGKQs (skipping failed draws).
    pub fn sgkq_batch(&mut self, count: usize, num_keywords: usize, r: u64) -> Vec<SgkQuery> {
        (0..count * 4).filter_map(|_| self.gen_sgkq(num_keywords, r)).take(count).collect()
    }

    /// Generate a batch of RKQs.
    pub fn rkq_batch(
        &mut self,
        count: usize,
        num_keywords: usize,
        r: u64,
    ) -> Vec<RangeKeywordQuery> {
        (0..count * 4).filter_map(|_| self.gen_rkq(num_keywords, r)).take(count).collect()
    }
}

fn coord_dist2(a: (f32, f32), b: (f32, f32)) -> f32 {
    let (dx, dy) = (a.0 - b.0, a.1 - b.1);
    dx * dx + dy * dy
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{load, DatasetId, Scale};

    #[test]
    fn generates_requested_keyword_counts() {
        let ds = load(DatasetId::Aus, Scale::Smoke);
        let mut gen = QueryGenerator::new(&ds.net, 1);
        for k in [1, 3, 5, 7] {
            let q = gen.gen_sgkq(k, 100).expect("query");
            assert_eq!(q.keywords.len(), k, "k={k}");
        }
    }

    #[test]
    fn keywords_are_distinct_and_exist() {
        let ds = load(DatasetId::Aus, Scale::Smoke);
        let mut gen = QueryGenerator::new(&ds.net, 2);
        let q = gen.gen_sgkq(5, 100).unwrap();
        let mut sorted = q.keywords.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), 5);
        for k in &q.keywords {
            assert!(
                !ds.net.nodes_with_keyword(*k).is_empty(),
                "sampled keyword must occur in the network"
            );
        }
    }

    #[test]
    fn frequency_bias_prefers_frequent_keywords() {
        let ds = load(DatasetId::Aus, Scale::Smoke);
        let freqs = ds.net.keyword_frequencies();
        let mut gen = QueryGenerator::new(&ds.net, 3);
        let mut picked: Vec<usize> = Vec::new();
        for _ in 0..200 {
            if let Some(q) = gen.gen_sgkq(1, 10) {
                picked.push(freqs[q.keywords[0].index()]);
            }
        }
        let avg_picked = picked.iter().sum::<usize>() as f64 / picked.len() as f64;
        let nonzero: Vec<usize> = freqs.iter().copied().filter(|&f| f > 0).collect();
        let avg_all = nonzero.iter().sum::<usize>() as f64 / nonzero.len() as f64;
        assert!(
            avg_picked > avg_all,
            "picked avg frequency {avg_picked} should exceed population avg {avg_all}"
        );
    }

    #[test]
    fn rkq_locations_are_objects() {
        let ds = load(DatasetId::Bri, Scale::Smoke);
        let mut gen = QueryGenerator::new(&ds.net, 4);
        for _ in 0..10 {
            let q = gen.gen_rkq(2, 50).unwrap();
            assert!(ds.net.is_object(q.location));
            assert_eq!(q.keywords.len(), 2);
        }
    }

    #[test]
    fn batches_are_deterministic_per_seed() {
        let ds = load(DatasetId::Aus, Scale::Smoke);
        let a = QueryGenerator::new(&ds.net, 9).sgkq_batch(5, 3, 77);
        let b = QueryGenerator::new(&ds.net, 9).sgkq_batch(5, 3, 77);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
    }

    #[test]
    fn impossible_keyword_count_returns_none() {
        let ds = load(DatasetId::Aus, Scale::Smoke);
        let mut gen = QueryGenerator::new(&ds.net, 5);
        assert!(gen.gen_sgkq(10_000, 10).is_none());
    }
}
